"""Local-search refinement baseline (Section 4.4, Figure 12).

The paper compares its stochastic refinement against a standard local
search that greedily swaps assignment pairs while the swap improves the
coverage score.  Because the search only ever accepts improving moves it
quickly gets stuck in a local maximum of the huge ``(C(R, delta_p))^P``
search space — which is exactly the behaviour Figure 12 demonstrates.

Two kinds of moves are considered:

* **replace** — swap an assigned reviewer of a paper for an unassigned
  reviewer with spare capacity;
* **exchange** — swap the reviewers of two assignment pairs between their
  papers.

Both moves preserve feasibility by construction.

The default implementation runs on the
:class:`~repro.core.dense.DenseProblem` index-space view: for every
member of a paper's group the scores of replace candidates come from one
:meth:`~repro.core.dense.DenseProblem.candidate_scores` broadcast and
the scores of *all* exchange partners from one
:meth:`~repro.core.dense.DenseProblem.scores_with_reviewer` kernel over
the maintained leave-one-out group vectors, instead of ``O(R + P·delta_p)``
object-path ``paper_score`` calls.  Replace candidates are additionally
*pruned* with an admissible upper bound (submodularity:
``score(loo + {c}) <= score(loo) + c(c, p)``, so the replace gain is
bounded by ``score(loo) + pair_score - current``): only candidates whose
bound clears the running best — usually a small minority once refinement
is underway — are evaluated exactly; skipped candidates provably cannot
be accepted by the scan, so the selected moves are unchanged.  The move
*selection* replays the exact first-strict-improvement scan of the object
path over the precomputed gain vectors, so the chosen moves — and the
refined assignment — are identical (``use_dense=False`` keeps the object
path as the pinned reference and benchmark baseline; the only
normalisation is that exchange partners are visited in sorted-id order,
where the object path historically used unspecified set order).
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.assignment import Assignment
from repro.core.delta import PRUNE_MARGIN
from repro.core.dense import DenseProblem
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRAResult, CRASolver
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.exceptions import ConfigurationError
from repro.obs.trace import get_tracer

TRACER = get_tracer()

__all__ = ["LocalSearchRefiner", "SDGAWithLocalSearchSolver"]

#: minimum improvement for a move to be accepted
_TOLERANCE = 1e-12


def _scan_accepts(gains: np.ndarray, best: float) -> tuple[float, int]:
    """Replay the sequential first-strict-improvement scan over ``gains``.

    Returns the updated running best and the index of the last accepted
    entry (``-1`` if none).  Entries that do not beat the *initial* best by
    the tolerance can never be accepted (the running best only grows), so
    only the small improving subset is visited in Python.
    """
    chosen = -1
    for index in np.flatnonzero(gains > best + _TOLERANCE).tolist():
        gain = gains[index]
        if gain > best + _TOLERANCE:
            best = float(gain)
            chosen = index
    return best, chosen


class _DenseSearchState:
    """Incrementally maintained index-space mirror of the current assignment.

    Keeps, per paper: the member rows in sorted-id order, the aggregated
    group vector, the current coverage score, and one *leave-one-out*
    group vector per member (the exchange kernel's input, flattened to
    ``(P * delta_p, T)`` slot arrays).  A move touches at most two papers,
    so repairs are O(``delta_p``) — the kernels stay hot while the
    bookkeeping stays cheap.
    """

    def __init__(
        self, dense: DenseProblem, assignment: Assignment, prune: bool = True
    ) -> None:
        self.dense = dense
        self.assignment = assignment
        self.prune = prune
        problem = dense.problem
        num_papers = dense.num_papers
        group_size = dense.group_size
        self.pair_scores = dense.pair_scores() if prune else None
        self.members: list[list[int]] = [
            dense.sorted_member_rows(assignment, paper_id)
            for paper_id in problem.paper_ids
        ]
        self.member_mask = np.zeros((dense.num_reviewers, num_papers), dtype=bool)
        for paper_idx, rows in enumerate(self.members):
            self.member_mask[rows, paper_idx] = True
        self.loads = dense.loads(assignment)
        self.group_vectors = dense.group_vectors(assignment, self.members)
        self.scores = dense.paper_scores(self.group_vectors)
        self.slot_paper = np.repeat(np.arange(num_papers, dtype=np.int64), group_size)
        self.slot_member = np.empty(num_papers * group_size, dtype=np.int64)
        self.slot_loo = np.empty(
            (num_papers * group_size, dense.num_topics), dtype=np.float64
        )
        #: score of each slot's leave-one-out group — the base of the
        #: admissible replace-gain bound
        self.slot_score = np.zeros(num_papers * group_size, dtype=np.float64)
        for paper_idx in range(num_papers):
            self._rebuild_slots(paper_idx)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _rebuild_slots(self, paper_idx: int) -> None:
        dense = self.dense
        rows = self.members[paper_idx]
        base = paper_idx * dense.group_size
        for offset, member in enumerate(rows):
            others = rows[:offset] + rows[offset + 1 :]
            slot = base + offset
            self.slot_member[slot] = member
            if others:
                np.max(dense.reviewer_matrix[others], axis=0, out=self.slot_loo[slot])
            else:
                self.slot_loo[slot] = 0.0
            if self.prune:
                self.slot_score[slot] = dense.paper_score(
                    self.slot_loo[slot], paper_idx
                )

    def _refresh_paper(self, paper_idx: int) -> None:
        dense = self.dense
        rows = self.members[paper_idx]
        rank = dense.id_rank
        rows.sort(key=rank.__getitem__)
        if rows:
            np.max(
                dense.reviewer_matrix[rows], axis=0, out=self.group_vectors[paper_idx]
            )
        else:
            self.group_vectors[paper_idx] = 0.0
        self.scores[paper_idx] = dense.paper_score(
            self.group_vectors[paper_idx], paper_idx
        )
        self._rebuild_slots(paper_idx)

    def apply(self, move: tuple) -> None:
        """Apply a move to both the index state and the id assignment."""
        dense = self.dense
        reviewer_ids = dense.problem.reviewer_ids
        paper_ids = dense.problem.paper_ids
        if move[0] == "replace":
            _, paper_idx, out_row, in_row = move
            self.assignment.remove(reviewer_ids[out_row], paper_ids[paper_idx])
            self.assignment.add(reviewer_ids[in_row], paper_ids[paper_idx])
            members = self.members[paper_idx]
            members.remove(out_row)
            members.append(in_row)
            self.member_mask[out_row, paper_idx] = False
            self.member_mask[in_row, paper_idx] = True
            self.loads[out_row] -= 1
            self.loads[in_row] += 1
            self._refresh_paper(paper_idx)
        else:
            _, paper_a, row_a, paper_b, row_b = move
            self.assignment.remove(reviewer_ids[row_a], paper_ids[paper_a])
            self.assignment.remove(reviewer_ids[row_b], paper_ids[paper_b])
            self.assignment.add(reviewer_ids[row_b], paper_ids[paper_a])
            self.assignment.add(reviewer_ids[row_a], paper_ids[paper_b])
            self.members[paper_a].remove(row_a)
            self.members[paper_a].append(row_b)
            self.members[paper_b].remove(row_b)
            self.members[paper_b].append(row_a)
            self.member_mask[row_a, paper_a] = False
            self.member_mask[row_b, paper_a] = True
            self.member_mask[row_b, paper_b] = False
            self.member_mask[row_a, paper_b] = True
            self._refresh_paper(paper_a)
            self._refresh_paper(paper_b)

    # ------------------------------------------------------------------
    # Move search
    # ------------------------------------------------------------------
    def best_move(
        self, paper_idx: int, do_replace: bool, do_exchange: bool
    ) -> tuple[float, tuple | None]:
        """The best improving move touching ``paper_idx`` (or ``None``).

        Replays the object path's scan order — for each member (sorted by
        id): all replace candidates in reviewer order, then all exchange
        partners in (paper, sorted member) order — against batch-computed
        gain vectors.
        """
        dense = self.dense
        current_score = float(self.scores[paper_idx])
        best_gain = 0.0
        best_move: tuple | None = None
        base = paper_idx * dense.group_size

        for offset in range(len(self.members[paper_idx])):
            slot = base + offset
            out_row = int(self.slot_member[slot])
            leave_one_out = self.slot_loo[slot]
            allowed = (
                ~self.member_mask[:, paper_idx]
                & (self.loads < dense.reviewer_workload)
                & dense.feasible[:, paper_idx]
            )
            # Scores of the group with ``out_row`` swapped for each
            # candidate — shared by replace gains and the exchange "a" side.
            swapped_scores = self._swapped_scores(
                paper_idx, slot, leave_one_out, allowed, current_score,
                best_gain, do_replace, do_exchange,
            )

            if do_replace:
                gains = swapped_scores - current_score
                gains[~allowed] = -np.inf
                new_best, chosen = _scan_accepts(gains, best_gain)
                if chosen >= 0:
                    best_gain = new_best
                    best_move = ("replace", paper_idx, out_row, chosen)

            if do_exchange:
                partner_scores = dense.scores_with_reviewer(
                    self.slot_loo, self.slot_paper, out_row
                )
                after = swapped_scores[self.slot_member] + partner_scores
                before = current_score + self.scores[self.slot_paper]
                gains = after - before
                allowed = self.slot_paper != paper_idx
                allowed &= ~self.member_mask[self.slot_member, paper_idx]
                allowed &= ~self.member_mask[out_row, self.slot_paper]
                allowed &= dense.feasible[self.slot_member, paper_idx]
                allowed &= dense.feasible[out_row, self.slot_paper]
                gains[~allowed] = -np.inf
                new_best, chosen = _scan_accepts(gains, best_gain)
                if chosen >= 0:
                    best_gain = new_best
                    best_move = (
                        "exchange",
                        paper_idx,
                        out_row,
                        int(self.slot_paper[chosen]),
                        int(self.slot_member[chosen]),
                    )
        return best_gain, best_move

    def _swapped_scores(
        self,
        paper_idx: int,
        slot: int,
        leave_one_out: np.ndarray,
        allowed: np.ndarray,
        current_score: float,
        best_gain: float,
        do_replace: bool,
        do_exchange: bool,
    ) -> np.ndarray:
        """Scores of ``loo + {candidate}``, pruned to the candidates that matter.

        With pruning on, a candidate's replace gain is bounded by
        ``slot_score + pair_score - current_score`` (admissible:
        submodularity caps the candidate's contribution to the
        leave-one-out group by its solo score).  Only candidates whose
        bound clears the running acceptance threshold — plus, when
        exchange moves are on, every current group member anywhere (the
        exchange kernel reads those entries) — are evaluated exactly,
        through a row-gathered kernel that is bitwise-equal to the full
        broadcast.  Skipped entries are ``-inf``: their true gain is below
        the threshold, so the first-strict-improvement scan could never
        have accepted them.

        When exchange moves force a near-dense gather anyway (assigned
        reviewers approach the pool size, true of every
        capacity-saturated instance), there is nothing to prune: the full
        kernel runs directly, without the bound work and without touching
        the prune counters.  ``prune_fallbacks`` therefore counts only
        genuinely attempted-but-uncertified prunes.
        """
        dense = self.dense
        if not self.prune:
            return dense.candidate_scores(leave_one_out, paper_idx)
        num_reviewers = dense.num_reviewers
        if do_exchange and self.slot_member.size * 2 >= num_reviewers:
            # The exchange side alone needs (an upper bound of) most of the
            # column: pruning is inapplicable here, not failed.
            return dense.candidate_scores(leave_one_out, paper_idx)
        if do_replace:
            bound = self.slot_score[slot] + self.pair_scores[:, paper_idx]
            surviving = np.flatnonzero(
                allowed
                & (bound - current_score + PRUNE_MARGIN > best_gain + _TOLERANCE)
            )
        else:
            surviving = np.empty(0, dtype=np.int64)
        if do_exchange:
            rows = np.union1d(surviving, self.slot_member)
        else:
            rows = surviving
        if rows.size * 2 >= num_reviewers:
            # Bound too loose to pay for the gather: evaluate everything.
            dense.view_stats.prune_fallbacks += 1
            return dense.candidate_scores(leave_one_out, paper_idx)
        dense.view_stats.prune_certified += 1
        swapped = np.full(num_reviewers, -np.inf, dtype=np.float64)
        swapped[rows] = dense.candidate_scores_for_rows(
            leave_one_out, paper_idx, rows
        )
        return swapped


class LocalSearchRefiner:
    """Greedy hill-climbing over replace/exchange moves.

    Parameters
    ----------
    max_rounds:
        Maximum number of full passes over the papers.
    time_budget:
        Optional wall-clock budget in seconds.
    moves:
        Which move kinds to consider: ``"all"`` (default), ``"replace"``
        or ``"exchange"``.
    use_dense:
        Search with the batched dense kernels (default).  ``False`` keeps
        the historical object-path implementation, which selects the
        identical moves and exists as the reference for the equivalence
        tests and the dense-kernel benchmark baseline.
    prune:
        Evaluate replace candidates through the admissible upper bound
        (default; dense path only).  Pruning is result-preserving — the
        skipped candidates provably cannot be accepted — so disabling it
        only changes the running time.
    """

    def __init__(
        self,
        max_rounds: int = 100,
        time_budget: float | None = None,
        moves: str = "all",
        use_dense: bool = True,
        prune: bool = True,
    ) -> None:
        if moves not in {"all", "replace", "exchange"}:
            raise ConfigurationError("moves must be 'all', 'replace' or 'exchange'")
        self._max_rounds = max_rounds
        self._time_budget = time_budget
        self._moves = moves
        self._use_dense = use_dense
        self._prune = prune

    def refine(
        self, problem: WGRAPProblem, assignment: Assignment
    ) -> tuple[Assignment, dict[str, Any]]:
        """Hill-climb from ``assignment``; returns the local optimum reached."""
        problem.validate_assignment(assignment, require_complete=True)
        if self._use_dense:
            return self._refine_dense(problem, assignment)
        return self._refine_object(problem, assignment)

    # ------------------------------------------------------------------
    # Dense search
    # ------------------------------------------------------------------
    def _refine_dense(
        self, problem: WGRAPProblem, assignment: Assignment
    ) -> tuple[Assignment, dict[str, Any]]:
        dense = problem.dense_view()
        state = _DenseSearchState(dense, assignment.copy(), prune=self._prune)
        current_score = float(sum(state.scores.tolist()))
        do_replace = self._moves in {"all", "replace"}
        do_exchange = self._moves in {"all", "exchange"}
        started = time.perf_counter()
        history: list[tuple[float, float]] = [(0.0, current_score)]
        moves_applied = 0

        for round_index in range(self._max_rounds):
            if self._time_budget is not None:
                if time.perf_counter() - started >= self._time_budget:
                    break
            improved = False

            with TRACER.span("local_search.round", round=round_index) as round_span:
                moves_before = moves_applied
                for paper_idx in range(dense.num_papers):
                    if self._time_budget is not None:
                        if time.perf_counter() - started >= self._time_budget:
                            break
                    gain, move = state.best_move(paper_idx, do_replace, do_exchange)
                    if move is not None and gain > _TOLERANCE:
                        state.apply(move)
                        current_score += gain
                        moves_applied += 1
                        improved = True
                        history.append((time.perf_counter() - started, current_score))
                round_span.set(moves=moves_applied - moves_before)

            if not improved:
                break

        stats: dict[str, Any] = {
            "moves_applied": moves_applied,
            "final_score": current_score,
            "history": history,
        }
        return state.assignment, stats

    # ------------------------------------------------------------------
    # Object-path reference
    # ------------------------------------------------------------------
    def _refine_object(
        self, problem: WGRAPProblem, assignment: Assignment
    ) -> tuple[Assignment, dict[str, Any]]:
        """The pre-dense implementation, kept as a pinned baseline."""
        current = assignment.copy()
        current_score = problem.assignment_score(current)
        started = time.perf_counter()
        history: list[tuple[float, float]] = [(0.0, current_score)]
        moves_applied = 0

        for round_index in range(self._max_rounds):
            if self._time_budget is not None:
                if time.perf_counter() - started >= self._time_budget:
                    break
            improved = False

            with TRACER.span("local_search.round", round=round_index) as round_span:
                moves_before = moves_applied
                for paper_id in problem.paper_ids:
                    if self._time_budget is not None:
                        if time.perf_counter() - started >= self._time_budget:
                            break
                    gain, move = self._best_move_for_paper(problem, current, paper_id)
                    if move is not None and gain > _TOLERANCE:
                        self._apply_move(current, move)
                        current_score += gain
                        moves_applied += 1
                        improved = True
                        history.append((time.perf_counter() - started, current_score))
                round_span.set(moves=moves_applied - moves_before)

            if not improved:
                break

        stats: dict[str, Any] = {
            "moves_applied": moves_applied,
            "final_score": current_score,
            "history": history,
        }
        return current, stats

    # ------------------------------------------------------------------
    # Move generation (object path)
    # ------------------------------------------------------------------
    def _best_move_for_paper(
        self, problem: WGRAPProblem, assignment: Assignment, paper_id: str
    ) -> tuple[float, tuple | None]:
        """The best improving move that touches ``paper_id`` (or ``None``)."""
        best_gain = 0.0
        best_move: tuple | None = None
        current_score = problem.paper_score(assignment, paper_id)
        members = sorted(assignment.reviewers_of(paper_id))
        do_replace = self._moves in {"all", "replace"}
        do_exchange = self._moves in {"all", "exchange"}

        for reviewer_id in members:
            # Replace moves: bring in a reviewer with spare capacity.
            if do_replace:
                for candidate_id in problem.reviewer_ids:
                    if candidate_id in members:
                        continue
                    if assignment.load(candidate_id) >= problem.reviewer_workload:
                        continue
                    if not problem.is_feasible_pair(candidate_id, paper_id):
                        continue
                    gain = self._replace_gain(
                        problem, assignment, paper_id, reviewer_id, candidate_id, current_score
                    )
                    if gain > best_gain + _TOLERANCE:
                        best_gain = gain
                        best_move = ("replace", paper_id, reviewer_id, candidate_id)

            # Exchange moves: trade reviewers with another paper.
            if do_exchange:
                for other_paper_id in problem.paper_ids:
                    if other_paper_id == paper_id:
                        continue
                    for other_reviewer_id in sorted(assignment.reviewers_of(other_paper_id)):
                        gain = self._exchange_gain(
                            problem,
                            assignment,
                            paper_id,
                            reviewer_id,
                            other_paper_id,
                            other_reviewer_id,
                        )
                        if gain is not None and gain > best_gain + _TOLERANCE:
                            best_gain = gain
                            best_move = (
                                "exchange",
                                paper_id,
                                reviewer_id,
                                other_paper_id,
                                other_reviewer_id,
                            )
        return best_gain, best_move

    @staticmethod
    def _replace_gain(
        problem: WGRAPProblem,
        assignment: Assignment,
        paper_id: str,
        out_reviewer: str,
        in_reviewer: str,
        current_score: float,
    ) -> float:
        assignment.remove(out_reviewer, paper_id)
        assignment.add(in_reviewer, paper_id)
        new_score = problem.paper_score(assignment, paper_id)
        assignment.remove(in_reviewer, paper_id)
        assignment.add(out_reviewer, paper_id)
        return new_score - current_score

    @staticmethod
    def _exchange_gain(
        problem: WGRAPProblem,
        assignment: Assignment,
        paper_a: str,
        reviewer_a: str,
        paper_b: str,
        reviewer_b: str,
    ) -> float | None:
        """Gain of swapping ``reviewer_a`` and ``reviewer_b`` between papers."""
        if reviewer_b in assignment.reviewers_of(paper_a):
            return None
        if reviewer_a in assignment.reviewers_of(paper_b):
            return None
        if not problem.is_feasible_pair(reviewer_b, paper_a):
            return None
        if not problem.is_feasible_pair(reviewer_a, paper_b):
            return None
        before = problem.paper_score(assignment, paper_a) + problem.paper_score(
            assignment, paper_b
        )
        assignment.remove(reviewer_a, paper_a)
        assignment.remove(reviewer_b, paper_b)
        assignment.add(reviewer_b, paper_a)
        assignment.add(reviewer_a, paper_b)
        after = problem.paper_score(assignment, paper_a) + problem.paper_score(
            assignment, paper_b
        )
        assignment.remove(reviewer_b, paper_a)
        assignment.remove(reviewer_a, paper_b)
        assignment.add(reviewer_a, paper_a)
        assignment.add(reviewer_b, paper_b)
        return after - before

    @staticmethod
    def _apply_move(assignment: Assignment, move: tuple) -> None:
        if move[0] == "replace":
            _, paper_id, out_reviewer, in_reviewer = move
            assignment.remove(out_reviewer, paper_id)
            assignment.add(in_reviewer, paper_id)
        else:
            _, paper_a, reviewer_a, paper_b, reviewer_b = move
            assignment.remove(reviewer_a, paper_a)
            assignment.remove(reviewer_b, paper_b)
            assignment.add(reviewer_b, paper_a)
            assignment.add(reviewer_a, paper_b)


class SDGAWithLocalSearchSolver(CRASolver):
    """SDGA followed by local search — the "SDGA-LS" line of Figure 12."""

    name = "SDGA-LS"

    def __init__(
        self,
        refiner: LocalSearchRefiner | None = None,
        base_solver: CRASolver | None = None,
    ) -> None:
        self._refiner = refiner or LocalSearchRefiner()
        self._base_solver = base_solver or StageDeepeningGreedySolver()

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        base_result: CRAResult = self._base_solver.solve(problem)
        refined, refine_stats = self._refiner.refine(problem, base_result.assignment)
        stats: dict[str, Any] = {
            "base_solver": self._base_solver.name,
            "base_score": base_result.score,
            **{f"local_search_{key}": value for key, value in refine_stats.items()},
        }
        return refined, stats
