"""Retrieval-based assignment (RRAP, Definition 4) — the motivating strawman.

The paper's introduction (Figure 1a) motivates WGRAP by showing what goes
wrong with purely retrieval-based assignment: every reviewer independently
receives their most relevant papers, so popular topics pile up on a few
reviewers while other papers receive no reviewer at all.

This module implements that formulation faithfully — each reviewer is given
their top ``delta_r`` papers by pair score, with no per-paper group-size
constraint — so the imbalance can be measured and demonstrated (see
``examples/compare_baselines.py`` and the tests).  Because RRAP ignores the
group-size constraint its output is *not* a feasible WGRAP assignment; it
is therefore exposed as a standalone function rather than a
:class:`~repro.cra.base.CRASolver`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.exceptions import ConfigurationError

__all__ = ["RetrievalAssignment", "solve_retrieval_assignment"]


@dataclass(frozen=True)
class RetrievalAssignment:
    """Outcome of the retrieval-based (RRAP) assignment.

    Attributes
    ----------
    assignment:
        The produced reviewer/paper pairs (papers may have any number of
        reviewers, including zero).
    unreviewed_papers:
        Papers that received no reviewer — the imbalance the paper's
        Figure 1(a) illustrates.
    overloaded_papers:
        Papers that received more than the problem's ``delta_p`` reviewers.
    pairwise_score:
        The RRAP objective: the sum of individual pair scores.
    """

    assignment: Assignment
    unreviewed_papers: tuple[str, ...]
    overloaded_papers: tuple[str, ...]
    pairwise_score: float


def solve_retrieval_assignment(
    problem: WGRAPProblem, reviews_per_reviewer: int | None = None
) -> RetrievalAssignment:
    """Give every reviewer their ``delta_r`` most relevant papers.

    Parameters
    ----------
    problem:
        The WGRAP instance (only its pair scores, conflicts and ``delta_r``
        are used; the group-size constraint is deliberately ignored, as in
        Definition 4).
    reviews_per_reviewer:
        How many papers each reviewer takes; defaults to the problem's
        ``delta_r``.
    """
    workload = reviews_per_reviewer if reviews_per_reviewer is not None else problem.reviewer_workload
    if workload < 1:
        raise ConfigurationError("reviews_per_reviewer must be at least 1")
    workload = min(workload, problem.num_papers)

    scores = problem.pair_score_matrix()  # (R, P)
    assignment = Assignment()
    total = 0.0
    for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
        order = np.argsort(-scores[reviewer_idx], kind="stable")
        taken = 0
        for paper_idx in order:
            if taken >= workload:
                break
            paper_id = problem.paper_ids[int(paper_idx)]
            if not problem.is_feasible_pair(reviewer_id, paper_id):
                continue
            assignment.add(reviewer_id, paper_id)
            total += float(scores[reviewer_idx, paper_idx])
            taken += 1

    unreviewed = tuple(
        paper_id for paper_id in problem.paper_ids if assignment.group_size(paper_id) == 0
    )
    overloaded = tuple(
        paper_id
        for paper_id in problem.paper_ids
        if assignment.group_size(paper_id) > problem.group_size
    )
    return RetrievalAssignment(
        assignment=assignment,
        unreviewed_papers=unreviewed,
        overloaded_papers=overloaded,
        pairwise_score=total,
    )
