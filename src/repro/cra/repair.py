"""Repair pass that completes a partial assignment.

Several constructive solvers (pair greedy, stable matching) can in tight
corner cases — capacity exactly equal to demand combined with conflicts of
interest — finish with a few papers short of their ``delta_p`` reviewers.
This module completes such assignments:

* normally with a capacitated one-reviewer-per-paper step (the same
  machinery SDGA uses for its stages), maximising the marginal coverage
  gain of the added pairs;
* when a paper is *deadlocked* — the only reviewers with spare capacity are
  already in its group — with a single augmenting swap that moves a member
  of another paper's group over and back-fills that paper with a
  spare-capacity reviewer, which preserves every constraint.

When the assignment is already complete the repair is a no-op.  The input
assignment is never modified; a completed copy is returned.

Applied to an *empty* assignment the repair pass is itself a constructive
solver: ``delta_p`` rounds of capacitated one-reviewer-per-paper refills
under the global workload — SDGA without the per-stage caps.
:class:`RefillRepairSolver` registers exactly that as the ``Repair``
baseline, so the refill machinery every other solver leans on is itself
exercised (and conformance-checked) as a first-class solver.

Refill inputs are built on the dense view by default; ``use_dense=False``
keeps the object path (per-paper ``gain_vector`` over ``is_feasible_pair``
string checks) as the conformance oracle — both produce bitwise-identical
gains and masks, hence identical completions.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.assignment.transportation import solve_capacitated_assignment
from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRASolver
from repro.exceptions import InfeasibleProblemError

__all__ = ["complete_assignment", "RefillRepairSolver"]


def complete_assignment(
    problem: WGRAPProblem,
    assignment: Assignment,
    backend: str = "hungarian",
    use_dense: bool = True,
) -> Assignment:
    """Fill every under-staffed paper up to ``delta_p`` reviewers.

    Raises
    ------
    InfeasibleProblemError
        If the remaining capacity cannot cover the missing slots even with
        augmenting swaps (which a validated :class:`WGRAPProblem` rules out
        unless conflicts of interest are extremely dense).
    """
    completed = assignment.copy()
    safety_budget = problem.num_papers * problem.group_size + 1

    for _ in range(safety_budget):
        missing = [
            paper_id
            for paper_id in problem.paper_ids
            if completed.group_size(paper_id) < problem.group_size
        ]
        if not missing:
            return completed

        capacities = np.array(
            [
                problem.reviewer_workload - completed.load(reviewer_id)
                for reviewer_id in problem.reviewer_ids
            ],
            dtype=np.int64,
        )
        if int(np.maximum(capacities, 0).sum()) < len(missing):
            raise InfeasibleProblemError(
                "not enough remaining reviewer capacity to complete the assignment"
            )

        if use_dense:
            gains, forbidden = _refill_inputs(problem, completed, missing, capacities)
        else:
            gains, forbidden = _refill_inputs_object(
                problem, completed, missing, capacities
            )

        deadlocked = [missing[row] for row in np.flatnonzero(forbidden.all(axis=1))]
        if deadlocked:
            for paper_id in deadlocked:
                if not _resolve_deadlock(problem, completed, paper_id):
                    raise InfeasibleProblemError(
                        f"paper {paper_id!r} cannot be completed: every reviewer with "
                        "spare capacity is already in its group or conflicted"
                    )
            continue  # loads changed; rebuild the refill inputs

        result = solve_capacitated_assignment(
            gains, np.maximum(capacities, 0), forbidden=forbidden, backend=backend
        )
        for row, paper_id in enumerate(missing):
            completed.add(problem.reviewer_ids[result.row_to_col[row]], paper_id)

    raise InfeasibleProblemError("the repair pass failed to converge")


def _refill_inputs(
    problem: WGRAPProblem,
    assignment: Assignment,
    missing: list[str],
    capacities: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Gain matrix and forbidden mask for one refill round.

    Runs on the dense view: marginal gains of all missing papers come from
    one batched :meth:`~repro.core.dense.DenseProblem.gain_matrix` call and
    the forbidden mask is composed from the compiled feasibility mask
    instead of per-pair ``is_feasible_pair`` string checks.
    """
    dense = problem.dense_view()
    paper_indices = np.array(
        [dense.paper_pos[paper_id] for paper_id in missing], dtype=np.int64
    )
    group_vectors = np.zeros((len(missing), dense.num_topics), dtype=np.float64)
    member_rows: list[list[int]] = []
    for row, paper_id in enumerate(missing):
        rows = [dense.reviewer_pos[rid] for rid in assignment.reviewers_of(paper_id)]
        member_rows.append(rows)
        if rows:
            np.max(dense.reviewer_matrix[rows], axis=0, out=group_vectors[row])
    gains = dense.gain_matrix(group_vectors, paper_indices)
    forbidden = ~dense.feasible.T[paper_indices]
    forbidden |= (capacities <= 0)[None, :]
    for row, rows in enumerate(member_rows):
        if rows:
            forbidden[row, rows] = True
    return gains, forbidden


def _refill_inputs_object(
    problem: WGRAPProblem,
    assignment: Assignment,
    missing: list[str],
    capacities: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """The same refill inputs through the object path (conformance oracle)."""
    scoring = problem.scoring
    reviewer_matrix = problem.reviewer_matrix
    paper_matrix = problem.paper_matrix
    num_reviewers = problem.num_reviewers
    gains = np.empty((len(missing), num_reviewers), dtype=np.float64)
    forbidden = np.zeros((len(missing), num_reviewers), dtype=bool)
    for row, paper_id in enumerate(missing):
        group_vector = problem.group_vector(assignment, paper_id)
        gains[row] = scoring.gain_vector(
            group_vector, reviewer_matrix, paper_matrix[problem.paper_index(paper_id)]
        )
        for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
            if capacities[reviewer_idx] <= 0:
                forbidden[row, reviewer_idx] = True
            elif not problem.is_feasible_pair(reviewer_id, paper_id):
                forbidden[row, reviewer_idx] = True
        for reviewer_id in assignment.reviewers_of(paper_id):
            forbidden[row, problem.reviewer_index(reviewer_id)] = True
    return gains, forbidden


def _resolve_deadlock(
    problem: WGRAPProblem, assignment: Assignment, paper_id: str
) -> bool:
    """Free a slot for ``paper_id`` with one augmenting swap.

    A reviewer ``r`` with spare capacity (necessarily already in the paper's
    group) is added to some *other* paper ``q``, and in exchange one of
    ``q``'s reviewers ``s`` moves into ``paper_id``.  Loads and group sizes
    of everyone except the short paper stay unchanged, so the swap is always
    constraint-preserving.
    """
    group = assignment.reviewers_of(paper_id)
    spare_reviewers = [
        reviewer_id
        for reviewer_id in problem.reviewer_ids
        if assignment.load(reviewer_id) < problem.reviewer_workload
    ]
    for spare in spare_reviewers:
        for other_paper in problem.paper_ids:
            if other_paper == paper_id:
                continue
            other_group = assignment.reviewers_of(other_paper)
            if spare in other_group or not problem.is_feasible_pair(spare, other_paper):
                continue
            for candidate in sorted(other_group):
                if candidate in group or candidate == spare:
                    continue
                if not problem.is_feasible_pair(candidate, paper_id):
                    continue
                assignment.remove(candidate, other_paper)
                assignment.add(candidate, paper_id)
                assignment.add(spare, other_paper)
                return True
    return False


class RefillRepairSolver(CRASolver):
    """The repair pass run from an empty assignment, as a solver.

    ``delta_p`` rounds of capacitated one-reviewer-per-paper refills under
    the *global* workload (no per-stage caps): structurally SDGA's
    machinery minus the Theorem 1/2 stage discipline, which makes it a
    useful ablation baseline — and puts :func:`complete_assignment`, the
    path every constructive solver falls back on, under direct
    conformance coverage.

    Parameters
    ----------
    backend:
        Assignment backend for each refill round.
    use_dense:
        ``False`` builds the refill inputs through the object path (the
        conformance oracle); results are identical either way.
    """

    name = "Repair"

    def __init__(self, backend: str = "hungarian", use_dense: bool = True) -> None:
        self._backend = backend
        self._use_dense = use_dense

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        assignment = complete_assignment(
            problem, Assignment(), backend=self._backend, use_dense=self._use_dense
        )
        return assignment, {"backend": self._backend, "rounds": problem.group_size}
