"""Stage Deepening Greedy Algorithm (SDGA) — Section 4.2, Algorithm 2.

SDGA splits the conference assignment into exactly ``delta_p`` stages.  At
every stage, *each paper receives exactly one additional reviewer* and each
reviewer takes at most ``ceil(delta_r / delta_p)`` new papers; the stage is
therefore a capacitated linear-assignment problem (Stage-WGRAP,
Definition 9) whose profit for pair ``(r, p)`` is the marginal coverage
gain of adding ``r`` to the group that ``p`` accumulated in earlier stages.

Solving every stage optimally yields the paper's approximation guarantee:
``1 - (1 - 1/delta_p)^delta_p >= 1 - 1/e`` when ``delta_p`` divides
``delta_r`` (Theorem 1) and at least ``1/2`` otherwise (Theorem 2) — a
substantial improvement over the 1/3 guarantee of the pair-greedy baseline.

The per-stage assignment can be solved by either the Hungarian backend
(default, dense) or the min-cost-flow backend; both are exact, so the
choice does not affect the result, only the running time (see the backend
ablation benchmark).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.assignment.transportation import solve_capacitated_assignment
from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRASolver
from repro.obs.trace import get_tracer

TRACER = get_tracer()

__all__ = ["StageDeepeningGreedySolver"]


class StageDeepeningGreedySolver(CRASolver):
    """The paper's SDGA: ``delta_p`` optimal one-reviewer-per-paper stages.

    Parameters
    ----------
    backend:
        ``"hungarian"`` (default) or ``"flow"`` — which exact assignment
        solver handles each stage.
    use_dense:
        ``False`` builds the per-stage inputs through the object path
        (per-paper ``gain_vector`` calls over ``is_feasible_pair`` string
        checks) instead of the compiled
        :meth:`~repro.core.dense.DenseProblem.stage_inputs` kernel.  Both
        paths produce bitwise-identical stage inputs — the object path is
        kept as the conformance-harness oracle and benchmark baseline.
    """

    name = "SDGA"

    def __init__(self, backend: str = "hungarian", use_dense: bool = True) -> None:
        self._backend = backend
        self._use_dense = use_dense

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        assignment = Assignment()
        stage_gains: list[float] = []
        for stage in range(problem.group_size):
            with TRACER.span("sdga.stage", stage=stage) as stage_span:
                gain = self._run_stage(problem, assignment)
                stage_span.set(gain=round(gain, 6))
            stage_gains.append(gain)
        return assignment, {
            "stages": problem.group_size,
            "stage_gains": stage_gains,
            "backend": self._backend,
        }

    # ------------------------------------------------------------------
    # One Stage-WGRAP step
    # ------------------------------------------------------------------
    def _run_stage(self, problem: WGRAPProblem, assignment: Assignment) -> float:
        """Assign one more reviewer to every paper, in place; returns the gain."""
        if self._use_dense:
            gains, forbidden, capacities = self._stage_inputs(problem, assignment)
        else:
            gains, forbidden, capacities = self._stage_inputs_object(
                problem, assignment
            )
        result = solve_capacitated_assignment(
            gains, capacities, forbidden=forbidden, backend=self._backend
        )
        for paper_idx, reviewer_idx in enumerate(result.row_to_col):
            assignment.add(
                problem.reviewer_ids[reviewer_idx], problem.paper_ids[paper_idx]
            )
        return float(result.total_profit)

    @staticmethod
    def _stage_inputs(
        problem: WGRAPProblem, assignment: Assignment
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build the per-stage gain matrix, forbidden mask and capacities.

        * Gains are marginal coverage gains relative to the groups formed in
          earlier stages (Equation 5), from one batched
          :meth:`~repro.core.dense.DenseProblem.gain_matrix` kernel.  The
          first stage (empty groups, where the gain of a reviewer *is*
          their pair score) is served straight from the shared — and,
          across mutations, delta-maintained — pair-score matrix, so a
          freshly mutated problem starts its first stage without any
          scoring work (bitwise-equal shortcut, see
          :meth:`~repro.core.dense.DenseProblem.stage_inputs`).
        * Forbidden pairs are conflicts of interest (the compiled
          feasibility mask) and reviewers already in the paper's group.
        * Per-reviewer capacity is the stage workload
          ``ceil(delta_r / delta_p)``, additionally clipped by the remaining
          global workload so the general (non-integral) case never exceeds
          ``delta_r`` in total; when the clip leaves too little headroom for
          one reviewer per paper (possible in the non-integral case's final
          stage), the global remainder is the binding constraint
          (Section 4.3.2) and is used instead.
        """
        return problem.dense_view().stage_inputs(assignment, stage_capped=True)

    @staticmethod
    def _stage_inputs_object(
        problem: WGRAPProblem, assignment: Assignment, stage_capped: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Object-path construction of the same stage inputs.

        One :meth:`~repro.core.scoring.ScoringFunction.gain_vector` call per
        paper against its object-path :meth:`~repro.core.problem.WGRAPProblem.group_vector`,
        feasibility from per-pair :meth:`~repro.core.problem.WGRAPProblem.is_feasible_pair`
        checks — the pre-compilation semantics the dense kernel is pinned
        against, kept as the conformance oracle.
        """
        scoring = problem.scoring
        reviewer_matrix = problem.reviewer_matrix
        paper_matrix = problem.paper_matrix
        num_papers = problem.num_papers
        num_reviewers = problem.num_reviewers
        gains = np.empty((num_papers, num_reviewers), dtype=np.float64)
        forbidden = np.zeros((num_papers, num_reviewers), dtype=bool)
        loads = np.zeros(num_reviewers, dtype=np.int64)
        for paper_idx, paper_id in enumerate(problem.paper_ids):
            group_vector = problem.group_vector(assignment, paper_id)
            gains[paper_idx] = scoring.gain_vector(
                group_vector, reviewer_matrix, paper_matrix[paper_idx]
            )
            for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
                if not problem.is_feasible_pair(reviewer_id, paper_id):
                    forbidden[paper_idx, reviewer_idx] = True
            for reviewer_id in assignment.reviewers_of(paper_id):
                row = problem.reviewer_index(reviewer_id)
                forbidden[paper_idx, row] = True
                loads[row] += 1
        remaining = np.maximum(problem.reviewer_workload - loads, 0)
        if stage_capped:
            capacities = np.minimum(problem.stage_workload, remaining)
            if int(capacities.sum()) < num_papers:
                capacities = remaining
        else:
            capacities = remaining
        return gains, forbidden, capacities
