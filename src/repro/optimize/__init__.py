"""LP / ILP substrate: model builder, simplex solver and branch-and-bound.

These replace the third-party ``lp_solve`` library used by the paper's ILP
baselines.  They are generic optimisation tools; the reviewer-assignment
formulations live in :mod:`repro.jra.ilp` and :mod:`repro.cra.ilp`.
"""

from repro.optimize.branch_and_bound import BranchAndBoundSolver, ILPSolution
from repro.optimize.model import LinearProgram, ModelBuilder, Sense
from repro.optimize.simplex import LPSolution, solve_linear_program

__all__ = [
    "BranchAndBoundSolver",
    "ILPSolution",
    "LinearProgram",
    "ModelBuilder",
    "Sense",
    "LPSolution",
    "solve_linear_program",
]
