"""A dense two-phase primal simplex solver for small linear programs.

The paper's ILP baseline uses ``lp_solve``, a revised-simplex library.
This module provides the equivalent substrate: a self-contained simplex
solver able to handle the LP relaxations produced by
:class:`repro.optimize.model.ModelBuilder`.  It targets the *small* LPs of
the reviewer-assignment formulations (hundreds of variables); the
branch-and-bound driver can alternatively delegate relaxations to SciPy's
HiGHS backend for larger instances (see
:mod:`repro.optimize.branch_and_bound`).

The implementation is the classic two-phase tableau method with Bland's
anti-cycling rule.  It favours clarity and robustness over raw speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    InfeasibleLinearProgramError,
    IterationLimitError,
    UnboundedProblemError,
)
from repro.optimize.model import LinearProgram

__all__ = ["LPSolution", "solve_linear_program"]

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class LPSolution:
    """Optimal solution of a linear program.

    Attributes
    ----------
    values:
        Optimal variable values in the original variable space.
    objective:
        Optimal objective value (maximisation convention).
    """

    values: np.ndarray
    objective: float


def solve_linear_program(
    program: LinearProgram, max_iterations: int | None = None
) -> LPSolution:
    """Solve the LP relaxation of ``program`` (integrality is ignored).

    Parameters
    ----------
    program:
        The linear program (maximisation convention).
    max_iterations:
        Pivot budget; defaults to a generous multiple of the problem size.

    Raises
    ------
    InfeasibleLinearProgramError
        If the feasible region is empty.
    UnboundedProblemError
        If the objective is unbounded above.
    IterationLimitError
        If the pivot budget is exhausted (should not happen with Bland's
        rule unless the budget is unrealistically small).
    """
    (
        constraint_matrix,
        rhs,
        cost,
        lower_shift,
        num_original,
    ) = _to_standard_form(program)

    num_constraints, num_variables = constraint_matrix.shape
    if max_iterations is None:
        max_iterations = 200 * (num_constraints + num_variables + 10)

    tableau, basis = _phase_one(constraint_matrix, rhs, max_iterations)
    solution_vector = _phase_two(tableau, basis, cost, max_iterations, num_variables)

    original_values = solution_vector[:num_original] + lower_shift
    objective = float(np.dot(program.objective, original_values))
    return LPSolution(values=original_values, objective=objective)


# ----------------------------------------------------------------------
# Standard-form conversion
# ----------------------------------------------------------------------
def _to_standard_form(
    program: LinearProgram,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Convert the general model into ``A x = b, x >= 0`` with ``b >= 0``.

    Variables are shifted by their (finite) lower bounds; finite upper
    bounds become extra inequality rows; inequality rows receive slack
    variables.  Returns the equality system, the phase-2 cost vector (for
    the maximisation objective, extended with zeros for slacks), the
    lower-bound shift and the number of original variables.
    """
    num_original = program.num_variables
    lower = np.where(np.isfinite(program.lower_bounds), program.lower_bounds, 0.0)
    if np.any(~np.isfinite(program.lower_bounds)):
        # Free variables are uncommon in assignment models; a simple and
        # correct treatment is to anchor them at zero and rely on the
        # constraints, which all our formulations satisfy.
        lower = np.where(np.isfinite(program.lower_bounds), program.lower_bounds, 0.0)

    upper_rows = [program.upper_matrix] if program.upper_rhs.size else []
    upper_rhs = [program.upper_rhs] if program.upper_rhs.size else []

    finite_upper = np.isfinite(program.upper_bounds)
    if np.any(finite_upper):
        bound_rows = np.eye(num_original)[finite_upper]
        bound_rhs = program.upper_bounds[finite_upper]
        upper_rows.append(bound_rows)
        upper_rhs.append(bound_rhs)

    if upper_rows:
        inequality_matrix = np.vstack(upper_rows)
        inequality_rhs = np.concatenate(upper_rhs)
    else:
        inequality_matrix = np.zeros((0, num_original), dtype=np.float64)
        inequality_rhs = np.zeros(0, dtype=np.float64)

    # Shift variables by their lower bounds: x = y + lower, y >= 0.
    inequality_rhs = inequality_rhs - inequality_matrix @ lower
    equality_rhs = program.equality_rhs - (
        program.equality_matrix @ lower if program.equality_rhs.size else 0.0
    )

    num_inequalities = inequality_matrix.shape[0]
    num_equalities = program.equality_matrix.shape[0]
    total_vars = num_original + num_inequalities

    rows = []
    if num_inequalities:
        slack_block = np.eye(num_inequalities)
        rows.append(np.hstack([inequality_matrix, slack_block]))
    if num_equalities:
        rows.append(
            np.hstack(
                [program.equality_matrix, np.zeros((num_equalities, num_inequalities))]
            )
        )
    if rows:
        constraint_matrix = np.vstack(rows)
        rhs = np.concatenate([inequality_rhs, equality_rhs]) if num_equalities else inequality_rhs
        if not num_inequalities:
            rhs = equality_rhs
    else:
        constraint_matrix = np.zeros((0, total_vars), dtype=np.float64)
        rhs = np.zeros(0, dtype=np.float64)

    # Make every right-hand side non-negative.
    negative = rhs < 0
    constraint_matrix[negative] *= -1.0
    rhs = np.where(negative, -rhs, rhs)

    cost = np.zeros(total_vars, dtype=np.float64)
    cost[:num_original] = program.objective
    return constraint_matrix, rhs, cost, lower, num_original


# ----------------------------------------------------------------------
# Two-phase simplex on the tableau
# ----------------------------------------------------------------------
def _phase_one(
    constraint_matrix: np.ndarray, rhs: np.ndarray, max_iterations: int
) -> tuple[np.ndarray, np.ndarray]:
    """Find a basic feasible solution by minimising artificial variables."""
    num_constraints, num_variables = constraint_matrix.shape
    if num_constraints == 0:
        # No constraints at all: the tableau is trivially feasible.
        tableau = np.zeros((0, num_variables + 1), dtype=np.float64)
        return tableau, np.zeros(0, dtype=np.int64)

    tableau = np.hstack(
        [constraint_matrix, np.eye(num_constraints), rhs.reshape(-1, 1)]
    ).astype(np.float64)
    basis = np.arange(num_variables, num_variables + num_constraints, dtype=np.int64)

    # Phase-1 objective: minimise the sum of artificials, i.e. maximise its
    # negation.  The reduced-cost row is expressed in terms of the basis.
    phase_one_cost = np.zeros(num_variables + num_constraints, dtype=np.float64)
    phase_one_cost[num_variables:] = -1.0

    _run_simplex(tableau, basis, phase_one_cost, max_iterations)

    artificial_value = float(tableau[:, -1][basis >= num_variables].sum())
    if artificial_value > 1e-7:
        raise InfeasibleLinearProgramError("the linear program has no feasible solution")

    # Pivot any artificial variables still in the basis out of it (they must
    # carry value zero at this point); if a row has no eligible pivot the
    # row is redundant and can be zeroed.
    for row in range(num_constraints):
        if basis[row] < num_variables:
            continue
        candidates = np.flatnonzero(np.abs(tableau[row, :num_variables]) > _TOLERANCE)
        if candidates.size:
            _pivot(tableau, basis, row, int(candidates[0]))
        else:
            tableau[row, :] = 0.0

    # Drop the artificial columns, keep the rhs.
    reduced = np.hstack([tableau[:, :num_variables], tableau[:, -1:].copy()])
    return reduced, basis


def _phase_two(
    tableau: np.ndarray,
    basis: np.ndarray,
    cost: np.ndarray,
    max_iterations: int,
    num_variables: int,
) -> np.ndarray:
    """Optimise the true objective starting from a feasible tableau."""
    if tableau.shape[0] == 0:
        # Unconstrained problem: optimum is at the (shifted) origin unless
        # some cost coefficient is positive, in which case it is unbounded.
        if np.any(cost > _TOLERANCE):
            raise UnboundedProblemError("the linear program is unbounded")
        return np.zeros(num_variables, dtype=np.float64)

    _run_simplex(tableau, basis, cost, max_iterations)

    solution = np.zeros(num_variables, dtype=np.float64)
    for row, variable in enumerate(basis):
        if variable < num_variables:
            solution[variable] = tableau[row, -1]
    return solution


def _run_simplex(
    tableau: np.ndarray, basis: np.ndarray, cost: np.ndarray, max_iterations: int
) -> None:
    """Primal simplex pivoting (maximisation) with Bland's rule, in place."""
    num_rows = tableau.shape[0]
    num_cols = tableau.shape[1] - 1

    for _ in range(max_iterations):
        # Reduced costs: c_j - c_B^T B^{-1} A_j, computed from the tableau.
        basic_costs = cost[basis]
        reduced_costs = cost[:num_cols] - basic_costs @ tableau[:, :num_cols]
        reduced_costs[np.abs(reduced_costs) < _TOLERANCE] = 0.0

        entering_candidates = np.flatnonzero(reduced_costs > _TOLERANCE)
        if entering_candidates.size == 0:
            return
        entering = int(entering_candidates[0])  # Bland's rule: smallest index

        column = tableau[:, entering]
        positive = column > _TOLERANCE
        if not np.any(positive):
            raise UnboundedProblemError("the linear program is unbounded")
        ratios = np.full(num_rows, np.inf, dtype=np.float64)
        ratios[positive] = tableau[positive, -1] / column[positive]
        best_ratio = ratios.min()
        # Bland's rule on the leaving variable: among the minimising rows,
        # pick the one whose basic variable has the smallest index.
        tie_rows = np.flatnonzero(np.abs(ratios - best_ratio) < 1e-12)
        leaving = int(tie_rows[np.argmin(basis[tie_rows])])

        _pivot(tableau, basis, leaving, entering)

    raise IterationLimitError("simplex exceeded its iteration budget")


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, column: int) -> None:
    """Gauss-Jordan pivot on ``(row, column)``, updating the basis."""
    pivot_value = tableau[row, column]
    tableau[row, :] /= pivot_value
    other_rows = np.arange(tableau.shape[0]) != row
    tableau[other_rows, :] -= np.outer(tableau[other_rows, column], tableau[row, :])
    basis[row] = column
