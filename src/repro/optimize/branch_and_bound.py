"""Branch-and-bound for 0-1 mixed-integer programs.

Together with :mod:`repro.optimize.simplex` this replaces the ``lp_solve``
library the paper used for its ILP baselines.  The driver explores a
best-bound search tree, solving the LP relaxation at each node and
branching on the most fractional binary variable.

Two relaxation backends are available:

* ``"simplex"`` — the self-contained dense simplex of this package.
* ``"highs"`` — SciPy's HiGHS interior-point/simplex via
  ``scipy.optimize.linprog``, useful for the larger relaxations of the JRA
  ILP formulation.  SciPy plays the role of the third-party LP library the
  original authors used.

``backend="auto"`` (default) picks HiGHS when SciPy is importable and falls
back to the built-in simplex otherwise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    InfeasibleLinearProgramError,
    SolverError,
    UnboundedProblemError,
)
from repro.optimize.model import LinearProgram
from repro.optimize.simplex import solve_linear_program

__all__ = ["ILPSolution", "BranchAndBoundSolver"]

_INTEGRALITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ILPSolution:
    """Result of a branch-and-bound run.

    Attributes
    ----------
    values:
        Best integral solution found (variable values).
    objective:
        Its objective value.
    is_optimal:
        True when the search tree was exhausted (the solution is provably
        optimal); false when a node or time limit stopped the search early.
    nodes_explored:
        Number of branch-and-bound nodes whose relaxation was solved.
    """

    values: np.ndarray
    objective: float
    is_optimal: bool
    nodes_explored: int


@dataclass(order=True)
class _Node:
    # best-bound search: nodes with the highest relaxation bound first
    sort_key: float
    fixed: dict[int, float] = field(compare=False)


class BranchAndBoundSolver:
    """Solve a 0-1 mixed-integer :class:`LinearProgram` by branch and bound.

    Parameters
    ----------
    backend:
        ``"auto"`` (default), ``"simplex"`` or ``"highs"``.
    node_limit:
        Maximum number of relaxations to solve before giving up and
        returning the incumbent.
    time_limit:
        Wall-clock budget in seconds (``None`` for unlimited).
    """

    def __init__(
        self,
        backend: str = "auto",
        node_limit: int = 100_000,
        time_limit: float | None = None,
    ) -> None:
        if backend not in {"auto", "simplex", "highs"}:
            raise ConfigurationError(
                f"unknown backend {backend!r}; use 'auto', 'simplex' or 'highs'"
            )
        self._backend = self._resolve_backend(backend)
        self._node_limit = node_limit
        self._time_limit = time_limit

    @staticmethod
    def _resolve_backend(backend: str) -> str:
        if backend != "auto":
            return backend
        try:
            import scipy.optimize  # noqa: F401
        except ImportError:  # pragma: no cover - scipy is installed in CI
            return "simplex"
        return "highs"

    @property
    def backend(self) -> str:
        """The relaxation backend actually in use."""
        return self._backend

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, program: LinearProgram) -> ILPSolution:
        """Maximise ``program`` subject to its 0-1 integrality constraints."""
        deadline = None if self._time_limit is None else time.monotonic() + self._time_limit
        integer_indices = np.flatnonzero(program.integer_mask)

        incumbent_values: np.ndarray | None = None
        incumbent_objective = -np.inf
        nodes_explored = 0
        exhausted = True

        # A simple LIFO/priority hybrid: nodes are kept sorted by their
        # parent relaxation bound so the most promising subtree is explored
        # first (best-bound search).
        frontier: list[_Node] = [_Node(sort_key=np.inf, fixed={})]

        while frontier:
            if nodes_explored >= self._node_limit:
                exhausted = False
                break
            if deadline is not None and time.monotonic() > deadline:
                exhausted = False
                break

            frontier.sort(key=lambda node: node.sort_key, reverse=True)
            node = frontier.pop(0)

            # Bound pruning: the parent's relaxation already caps this subtree.
            if node.sort_key <= incumbent_objective + 1e-9:
                continue

            relaxation = self._solve_relaxation(program, node.fixed)
            nodes_explored += 1
            if relaxation is None:
                continue  # infeasible subtree
            values, objective = relaxation
            if objective <= incumbent_objective + 1e-9:
                continue  # cannot beat the incumbent

            fractional = self._most_fractional(values, integer_indices)
            if fractional is None:
                # Integral solution: new incumbent.
                incumbent_values = values
                incumbent_objective = objective
                continue

            for fixed_value in (1.0, 0.0):
                child_fixed = dict(node.fixed)
                child_fixed[fractional] = fixed_value
                frontier.append(_Node(sort_key=objective, fixed=child_fixed))

        if incumbent_values is None:
            raise InfeasibleLinearProgramError(
                "no feasible integral solution was found"
            )
        return ILPSolution(
            values=incumbent_values,
            objective=incumbent_objective,
            is_optimal=exhausted,
            nodes_explored=nodes_explored,
        )

    # ------------------------------------------------------------------
    # Relaxations
    # ------------------------------------------------------------------
    def _solve_relaxation(
        self, program: LinearProgram, fixed: dict[int, float]
    ) -> tuple[np.ndarray, float] | None:
        """Solve the LP relaxation with some variables fixed; None if infeasible."""
        lower = program.lower_bounds.copy()
        upper = program.upper_bounds.copy()
        for index, value in fixed.items():
            lower[index] = value
            upper[index] = value

        restricted = LinearProgram(
            objective=program.objective,
            upper_matrix=program.upper_matrix,
            upper_rhs=program.upper_rhs,
            equality_matrix=program.equality_matrix,
            equality_rhs=program.equality_rhs,
            lower_bounds=lower,
            upper_bounds=upper,
            integer_mask=program.integer_mask,
            variable_names=program.variable_names,
        )
        if self._backend == "highs":
            return self._solve_with_highs(restricted)
        return self._solve_with_simplex(restricted)

    @staticmethod
    def _solve_with_simplex(program: LinearProgram) -> tuple[np.ndarray, float] | None:
        try:
            solution = solve_linear_program(program)
        except InfeasibleLinearProgramError:
            return None
        except UnboundedProblemError as error:
            raise SolverError(
                "the LP relaxation is unbounded; 0-1 programs must have bounded objectives"
            ) from error
        return solution.values, solution.objective

    @staticmethod
    def _solve_with_highs(program: LinearProgram) -> tuple[np.ndarray, float] | None:
        from scipy.optimize import linprog

        bounds = [
            (float(low), None if np.isinf(high) else float(high))
            for low, high in zip(program.lower_bounds, program.upper_bounds)
        ]
        result = linprog(
            c=-program.objective,  # linprog minimises
            A_ub=program.upper_matrix if program.upper_rhs.size else None,
            b_ub=program.upper_rhs if program.upper_rhs.size else None,
            A_eq=program.equality_matrix if program.equality_rhs.size else None,
            b_eq=program.equality_rhs if program.equality_rhs.size else None,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None
        return np.asarray(result.x, dtype=np.float64), float(-result.fun)

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------
    @staticmethod
    def _most_fractional(values: np.ndarray, integer_indices: np.ndarray) -> int | None:
        """Index of the binary variable farthest from integrality, or None."""
        if integer_indices.size == 0:
            return None
        fractional_parts = np.abs(values[integer_indices] - np.round(values[integer_indices]))
        worst = int(np.argmax(fractional_parts))
        if fractional_parts[worst] <= _INTEGRALITY_TOLERANCE:
            return None
        return int(integer_indices[worst])
