"""A small declarative builder for linear and 0-1 integer programs.

The ILP baselines of the paper (Section 3 for JRA, Section 5.2 for CRA)
need a way to phrase "maximise a linear objective subject to linear
constraints, some variables binary".  :class:`ModelBuilder` collects
variables, constraints and an objective, and produces a
:class:`LinearProgram` value object that the solvers in
:mod:`repro.optimize.simplex` and :mod:`repro.optimize.branch_and_bound`
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Sense", "LinearProgram", "ModelBuilder"]


class Sense(str, Enum):
    """Direction of a linear constraint."""

    LESS_EQUAL = "<="
    GREATER_EQUAL = ">="
    EQUAL = "=="


@dataclass(frozen=True)
class LinearProgram:
    """An immutable linear (or 0-1 mixed-integer) program.

    The convention is *maximisation*:

    .. math:: \\max c^T x \\;\\text{s.t.}\\; A_{ub} x \\le b_{ub},\\;
              A_{eq} x = b_{eq},\\; l \\le x \\le u

    ``integer_mask[j]`` marks variable ``j`` as 0-1 integer (its bounds must
    then lie inside ``[0, 1]``).
    """

    objective: np.ndarray
    upper_matrix: np.ndarray
    upper_rhs: np.ndarray
    equality_matrix: np.ndarray
    equality_rhs: np.ndarray
    lower_bounds: np.ndarray
    upper_bounds: np.ndarray
    integer_mask: np.ndarray
    variable_names: tuple[str, ...] = ()

    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return int(self.objective.size)

    @property
    def num_constraints(self) -> int:
        """Total number of constraints (inequalities plus equalities)."""
        return int(self.upper_rhs.size + self.equality_rhs.size)

    def objective_value(self, solution: np.ndarray) -> float:
        """Evaluate the objective at a candidate solution."""
        return float(np.dot(self.objective, np.asarray(solution, dtype=np.float64)))

    def is_feasible(self, solution: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Check a candidate solution against every constraint and bound."""
        x = np.asarray(solution, dtype=np.float64)
        if x.shape != (self.num_variables,):
            return False
        if np.any(x < self.lower_bounds - tolerance):
            return False
        if np.any(x > self.upper_bounds + tolerance):
            return False
        if self.upper_rhs.size and np.any(self.upper_matrix @ x > self.upper_rhs + tolerance):
            return False
        if self.equality_rhs.size and np.any(
            np.abs(self.equality_matrix @ x - self.equality_rhs) > tolerance
        ):
            return False
        if np.any(np.abs(x[self.integer_mask] - np.round(x[self.integer_mask])) > tolerance):
            return False
        return True


@dataclass
class _Constraint:
    coefficients: dict[int, float]
    sense: Sense
    rhs: float


class ModelBuilder:
    """Incrementally build a :class:`LinearProgram`.

    Example
    -------
    >>> builder = ModelBuilder()
    >>> x = builder.add_variable("x", lower=0.0, upper=1.0, integer=True)
    >>> y = builder.add_variable("y", lower=0.0)
    >>> builder.add_constraint({x: 1.0, y: 2.0}, Sense.LESS_EQUAL, 3.0)
    >>> builder.set_objective({x: 5.0, y: 1.0})
    >>> program = builder.build()
    """

    def __init__(self) -> None:
        self._names: list[str] = []
        self._lower: list[float] = []
        self._upper: list[float] = []
        self._integer: list[bool] = []
        self._constraints: list[_Constraint] = []
        self._objective: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: str | None = None,
        lower: float = 0.0,
        upper: float = float("inf"),
        integer: bool = False,
    ) -> int:
        """Add a variable and return its index."""
        if upper < lower:
            raise ConfigurationError(
                f"variable upper bound {upper} is below lower bound {lower}"
            )
        if integer and (lower < -1e-9 or upper > 1.0 + 1e-9):
            raise ConfigurationError(
                "integer variables must be 0-1 (bounds within [0, 1])"
            )
        index = len(self._names)
        self._names.append(name or f"x{index}")
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._integer.append(bool(integer))
        return index

    def add_binary_variable(self, name: str | None = None) -> int:
        """Add a 0-1 variable and return its index."""
        return self.add_variable(name=name, lower=0.0, upper=1.0, integer=True)

    @property
    def num_variables(self) -> int:
        """Number of variables added so far."""
        return len(self._names)

    # ------------------------------------------------------------------
    # Constraints and objective
    # ------------------------------------------------------------------
    def add_constraint(
        self, coefficients: dict[int, float], sense: Sense | str, rhs: float
    ) -> None:
        """Add a linear constraint ``sum(coefficients) <sense> rhs``."""
        sense = Sense(sense)
        for index in coefficients:
            self._check_index(index)
        self._constraints.append(
            _Constraint(coefficients=dict(coefficients), sense=sense, rhs=float(rhs))
        )

    def set_objective(self, coefficients: dict[int, float]) -> None:
        """Set the (maximisation) objective coefficients."""
        for index in coefficients:
            self._check_index(index)
        self._objective = dict(coefficients)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> LinearProgram:
        """Produce the immutable :class:`LinearProgram`."""
        num_vars = self.num_variables
        if num_vars == 0:
            raise ConfigurationError("a model needs at least one variable")

        objective = np.zeros(num_vars, dtype=np.float64)
        for index, value in self._objective.items():
            objective[index] = value

        upper_rows: list[np.ndarray] = []
        upper_rhs: list[float] = []
        equality_rows: list[np.ndarray] = []
        equality_rhs: list[float] = []
        for constraint in self._constraints:
            row = np.zeros(num_vars, dtype=np.float64)
            for index, value in constraint.coefficients.items():
                row[index] = value
            if constraint.sense is Sense.LESS_EQUAL:
                upper_rows.append(row)
                upper_rhs.append(constraint.rhs)
            elif constraint.sense is Sense.GREATER_EQUAL:
                upper_rows.append(-row)
                upper_rhs.append(-constraint.rhs)
            else:
                equality_rows.append(row)
                equality_rhs.append(constraint.rhs)

        def _stack(rows: list[np.ndarray]) -> np.ndarray:
            if rows:
                return np.vstack(rows)
            return np.zeros((0, num_vars), dtype=np.float64)

        return LinearProgram(
            objective=objective,
            upper_matrix=_stack(upper_rows),
            upper_rhs=np.asarray(upper_rhs, dtype=np.float64),
            equality_matrix=_stack(equality_rows),
            equality_rhs=np.asarray(equality_rhs, dtype=np.float64),
            lower_bounds=np.asarray(self._lower, dtype=np.float64),
            upper_bounds=np.asarray(self._upper, dtype=np.float64),
            integer_mask=np.asarray(self._integer, dtype=bool),
            variable_names=tuple(self._names),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._names):
            raise ConfigurationError(f"unknown variable index {index}")
