"""Relationships between WGRAP and earlier RAP formulations (Section 2.3).

The paper shows that the three previously studied reviewer-assignment
formulations are special cases of WGRAP:

* **RRAP** (retrieval-based): no group-size constraint, per-pair objective.
* **ARAP** (assignment-based): both constraints, per-pair objective.
* **SGRAP** (set-coverage group-based): both constraints, group objective on
  binary topic *sets*.

This module implements the constructive reductions used in that discussion —
binary set-coverage vectors for SGRAP, and the block-expansion that turns
the group objective into a sum of per-pair scores for ARAP/RRAP — together
with the formulation-comparison table (Table 2).  They are exercised by the
tests (the reductions must preserve scores exactly) and by
``benchmarks/bench_table2_reductions.py``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence, Set
from dataclasses import dataclass

import numpy as np

from repro.core.entities import Paper, Reviewer
from repro.core.problem import WGRAPProblem
from repro.core.scoring import WeightedCoverage
from repro.core.vectors import TopicVector
from repro.exceptions import ConfigurationError

__all__ = [
    "RAPFormulation",
    "formulation_table",
    "binary_topic_vector",
    "set_coverage",
    "sgrap_problem_from_topic_sets",
    "expand_problem_for_pairwise_objective",
]


@dataclass(frozen=True)
class RAPFormulation:
    """One row of the paper's Table 2: properties of a RAP formulation."""

    name: str
    group_size_constraint: bool
    group_based_objective: bool
    objective_weighting: str  # "weight" or "set"

    def is_special_case_of_wgrap(self) -> bool:
        """Every formulation in the table reduces to WGRAP."""
        return True


def formulation_table() -> tuple[RAPFormulation, ...]:
    """The four formulations compared in Table 2 of the paper."""
    return (
        RAPFormulation("RRAP", group_size_constraint=False,
                       group_based_objective=False, objective_weighting="weight"),
        RAPFormulation("ARAP", group_size_constraint=True,
                       group_based_objective=False, objective_weighting="weight"),
        RAPFormulation("SGRAP", group_size_constraint=True,
                       group_based_objective=True, objective_weighting="set"),
        RAPFormulation("WGRAP", group_size_constraint=True,
                       group_based_objective=True, objective_weighting="weight"),
    )


# ----------------------------------------------------------------------
# SGRAP: binary topic vectors
# ----------------------------------------------------------------------
def binary_topic_vector(topic_set: Set[int] | Iterable[int], num_topics: int) -> TopicVector:
    """Convert a topic *set* into a 0/1 topic vector of length ``num_topics``."""
    values = np.zeros(num_topics, dtype=np.float64)
    for topic in topic_set:
        if not 0 <= int(topic) < num_topics:
            raise ConfigurationError(
                f"topic {topic} out of range for {num_topics} topics"
            )
        values[int(topic)] = 1.0
    return TopicVector(values)


def set_coverage(group_topic_sets: Sequence[Set[int]], paper_topic_set: Set[int]) -> float:
    """SGRAP's set coverage ratio ``|union(T_g) ∩ T_p| / |T_p|``."""
    paper_topics = set(paper_topic_set)
    if not paper_topics:
        return 0.0
    union: set[int] = set()
    for topic_set in group_topic_sets:
        union |= set(topic_set)
    return len(union & paper_topics) / len(paper_topics)


def sgrap_problem_from_topic_sets(
    paper_topic_sets: dict[str, Set[int]],
    reviewer_topic_sets: dict[str, Set[int]],
    num_topics: int,
    group_size: int,
    reviewer_workload: int | None = None,
) -> WGRAPProblem:
    """Build the WGRAP instance equivalent to an SGRAP instance.

    Topic sets are converted into binary vectors, under which the weighted
    coverage of Definition 1 coincides exactly with SGRAP's set coverage
    ratio (Section 2.3).  Solving the returned WGRAP instance therefore
    solves the original SGRAP instance.
    """
    papers = [
        Paper(id=paper_id, vector=binary_topic_vector(topics, num_topics))
        for paper_id, topics in paper_topic_sets.items()
    ]
    reviewers = [
        Reviewer(id=reviewer_id, vector=binary_topic_vector(topics, num_topics))
        for reviewer_id, topics in reviewer_topic_sets.items()
    ]
    return WGRAPProblem(
        papers=papers,
        reviewers=reviewers,
        group_size=group_size,
        reviewer_workload=reviewer_workload,
        scoring=WeightedCoverage(),
    )


# ----------------------------------------------------------------------
# ARAP / RRAP: block expansion that linearises the group objective
# ----------------------------------------------------------------------
def expand_problem_for_pairwise_objective(problem: WGRAPProblem) -> WGRAPProblem:
    """Expand topic vectors so the group objective becomes a per-pair sum.

    Section 2.3 reduces WGRAP to ARAP/RRAP by blowing the ``T``-dimensional
    vectors up to ``R * T`` dimensions: the paper vector is repeated once
    per reviewer, and reviewer ``i`` keeps its vector only in block ``i``
    (zeros elsewhere).  On the expanded instance the *group* coverage of a
    set of reviewers equals ``1/R`` times the *sum* of their individual
    coverages on the original instance, i.e. exactly the ARAP objective up
    to a constant factor.

    The expansion is mainly of theoretical interest; it is implemented here
    (and verified in the tests) to demonstrate the claimed generality of
    WGRAP.  Note the ``R``-fold blow-up of the dimensionality, so only use
    it on small instances.
    """
    num_reviewers = problem.num_reviewers
    num_topics = problem.num_topics
    expanded_dim = num_reviewers * num_topics

    expanded_papers = []
    for paper in problem.papers:
        tiled = np.tile(paper.vector.values, num_reviewers)
        expanded_papers.append(paper.with_vector(TopicVector(tiled)))

    expanded_reviewers = []
    for position, reviewer in enumerate(problem.reviewers):
        values = np.zeros(expanded_dim, dtype=np.float64)
        start = position * num_topics
        values[start:start + num_topics] = reviewer.vector.values
        expanded_reviewers.append(reviewer.with_vector(TopicVector(values)))

    return WGRAPProblem(
        papers=expanded_papers,
        reviewers=expanded_reviewers,
        group_size=problem.group_size,
        reviewer_workload=problem.reviewer_workload,
        conflicts=problem.conflicts,
        scoring=problem.scoring,
        validate_capacity=False,
    )
