"""Assignment constraints: conflicts of interest and workload bounds.

WGRAP (Definition 3) has two hard constraints — the per-paper group size
``delta_p`` and the per-reviewer workload ``delta_r`` — plus, in practice,
conflicts of interest (COIs) that forbid specific reviewer/paper pairs.
Section 4.3 of the paper notes that SDGA keeps its approximation guarantee
in the presence of COIs, so every solver in this library accepts them.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["ConflictOfInterest", "WorkloadConstraints"]


class ConflictOfInterest:
    """A set of forbidden ``(reviewer_id, paper_id)`` pairs.

    The container is symmetric-agnostic: a conflict simply means the pair
    may never appear in an assignment, whatever the reason (co-authorship,
    same institution, personal ties, ...).
    """

    __slots__ = ("_pairs", "_by_reviewer", "_by_paper", "_version", "_log", "_log_start")

    #: keep at most this many changelog entries (beyond a per-size floor);
    #: older entries are dropped and views that fell further behind simply
    #: recompile, so a long-lived service never accumulates an unbounded log
    _LOG_LIMIT = 4096

    def __init__(self, pairs: Iterable[tuple[str, str]] = ()) -> None:
        self._pairs: set[tuple[str, str]] = set()
        self._by_reviewer: dict[str, set[str]] = {}
        self._by_paper: dict[str, set[str]] = {}
        self._version = 0
        #: changelog of effective mutations, one ``(reviewer_id, paper_id,
        #: is_conflict)`` entry per version step; compiled views replay the
        #: tail of this log to patch themselves in place instead of
        #: recompiling their whole feasibility relation.  Compacted once it
        #: outgrows ``_LOG_LIMIT`` (``_log_start`` tracks the version of
        #: the oldest retained entry).
        self._log: list[tuple[str, str, bool]] = []
        self._log_start = 0
        for reviewer_id, paper_id in pairs:
            self.add(reviewer_id, paper_id)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter bumped by every effective mutation.

        Compiled views of the conflict set (most importantly the
        feasibility mask of :class:`repro.core.dense.DenseProblem`) record
        the version they were built against and patch themselves with
        :meth:`changes_since` when it moves.
        """
        return self._version

    def changes_since(self, version: int) -> tuple[tuple[str, str, bool], ...] | None:
        """The effective mutations applied after ``version``, oldest first.

        Each entry is ``(reviewer_id, paper_id, is_conflict)`` with
        ``is_conflict`` the state of the pair *after* the mutation, so a
        compiled ``(R, P)`` feasibility mask can be repaired by replaying
        the entries in order — work proportional to the number of edits,
        not to ``R * P``.

        Returns ``None`` when ``version`` predates the compacted changelog
        (the caller must recompile its view from the current state).

        Raises
        ------
        ConfigurationError
            If ``version`` is ahead of this container (it can only have
            come from a different container).
        """
        if version < 0 or version > self._version:
            raise ConfigurationError(
                f"version {version} was never produced by this conflict set "
                f"(current version: {self._version})"
            )
        if version < self._log_start:
            return None
        return tuple(self._log[version - self._log_start :])

    def _record(self, reviewer_id: str, paper_id: str, is_conflict: bool) -> None:
        self._log.append((reviewer_id, paper_id, is_conflict))
        self._version += 1
        if len(self._log) > self._LOG_LIMIT:
            dropped = len(self._log) // 2
            del self._log[:dropped]
            self._log_start += dropped

    def add(self, reviewer_id: str, paper_id: str) -> None:
        """Declare that ``reviewer_id`` must never review ``paper_id``."""
        if not reviewer_id or not paper_id:
            raise ConfigurationError("conflict entries need non-empty identifiers")
        pair = (reviewer_id, paper_id)
        if pair in self._pairs:
            return
        self._pairs.add(pair)
        self._by_reviewer.setdefault(reviewer_id, set()).add(paper_id)
        self._by_paper.setdefault(paper_id, set()).add(reviewer_id)
        self._record(reviewer_id, paper_id, True)

    def discard(self, reviewer_id: str, paper_id: str) -> None:
        """Remove a conflict if present (no error if absent)."""
        pair = (reviewer_id, paper_id)
        if pair not in self._pairs:
            return
        self._pairs.discard(pair)
        self._by_reviewer[reviewer_id].discard(paper_id)
        self._by_paper[paper_id].discard(reviewer_id)
        self._record(reviewer_id, paper_id, False)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_conflict(self, reviewer_id: str, paper_id: str) -> bool:
        """Whether the pair is forbidden."""
        return (reviewer_id, paper_id) in self._pairs

    def papers_conflicting_with(self, reviewer_id: str) -> frozenset[str]:
        """All papers this reviewer must not see."""
        return frozenset(self._by_reviewer.get(reviewer_id, ()))

    def reviewers_conflicting_with(self, paper_id: str) -> frozenset[str]:
        """All reviewers that must not see this paper."""
        return frozenset(self._by_paper.get(paper_id, ()))

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(sorted(self._pairs))

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._pairs

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConflictOfInterest):
            return NotImplemented
        return self._pairs == other._pairs

    def __repr__(self) -> str:
        return f"ConflictOfInterest({len(self._pairs)} pairs)"

    def copy(self) -> "ConflictOfInterest":
        """An independent copy of this conflict set."""
        return ConflictOfInterest(self._pairs)

    @classmethod
    def from_coauthorship(
        cls, paper_authors: dict[str, Iterable[str]], reviewer_ids: Iterable[str]
    ) -> "ConflictOfInterest":
        """Build conflicts from authorship: an author never reviews their paper.

        Parameters
        ----------
        paper_authors:
            Mapping from paper id to the ids of its authors.
        reviewer_ids:
            The reviewer pool; only authors that actually serve as reviewers
            generate conflicts.
        """
        pool = set(reviewer_ids)
        conflicts = cls()
        for paper_id, authors in paper_authors.items():
            for author in authors:
                if author in pool:
                    conflicts.add(author, paper_id)
        return conflicts


@dataclass(frozen=True)
class WorkloadConstraints:
    """The two cardinality constraints of WGRAP.

    Attributes
    ----------
    group_size:
        ``delta_p`` — exactly this many reviewers per paper.
    reviewer_workload:
        ``delta_r`` — at most this many papers per reviewer.
    """

    group_size: int
    reviewer_workload: int

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ConfigurationError("group_size (delta_p) must be at least 1")
        if self.reviewer_workload < 1:
            raise ConfigurationError("reviewer_workload (delta_r) must be at least 1")

    @property
    def stage_workload(self) -> int:
        """Per-stage workload ``ceil(delta_r / delta_p)`` used by SDGA."""
        return -(-self.reviewer_workload // self.group_size)

    @property
    def is_integral(self) -> bool:
        """Whether ``delta_r`` is divisible by ``delta_p``.

        In the integral case SDGA achieves the stronger ``1 - 1/e``
        approximation ratio (Theorem 1); otherwise the guarantee is
        ``1 - (1 - 1/delta_p)^(delta_p - 1) >= 1/2`` (Theorem 2).
        """
        return self.reviewer_workload % self.group_size == 0

    def total_capacity(self, num_reviewers: int) -> int:
        """Total number of reviews the pool can produce."""
        return num_reviewers * self.reviewer_workload

    def total_demand(self, num_papers: int) -> int:
        """Total number of reviews the papers require."""
        return num_papers * self.group_size

    def is_satisfiable(self, num_reviewers: int, num_papers: int) -> bool:
        """Capacity check ``R * delta_r >= P * delta_p`` from Section 2.2."""
        return self.total_capacity(num_reviewers) >= self.total_demand(num_papers)
