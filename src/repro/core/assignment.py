"""The :class:`Assignment` container: a bipartite reviewer/paper relation.

An assignment ``A`` is a subset of ``P x R`` (paper/reviewer pairs).  The
paper indexes it both ways — ``A[p]`` is the set of reviewers of paper
``p`` and ``A[r]`` the set of papers given to reviewer ``r`` — and so does
this class.  The container is deliberately independent of any particular
problem instance: it only stores identifiers, so the same object can be
scored under different scoring functions, checked against different
constraint sets, serialised, and diffed.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import ConfigurationError

__all__ = ["Assignment"]


class Assignment:
    """A mutable set of ``(reviewer_id, paper_id)`` pairs with two-way indexes."""

    __slots__ = ("_by_paper", "_by_reviewer", "_size")

    def __init__(self, pairs: Iterable[tuple[str, str]] = ()) -> None:
        self._by_paper: dict[str, set[str]] = {}
        self._by_reviewer: dict[str, set[str]] = {}
        self._size = 0
        for reviewer_id, paper_id in pairs:
            self.add(reviewer_id, paper_id)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, reviewer_id: str, paper_id: str) -> bool:
        """Add a pair; returns ``True`` if it was not already present."""
        if not reviewer_id or not paper_id:
            raise ConfigurationError("assignment pairs need non-empty identifiers")
        reviewers = self._by_paper.setdefault(paper_id, set())
        if reviewer_id in reviewers:
            return False
        reviewers.add(reviewer_id)
        self._by_reviewer.setdefault(reviewer_id, set()).add(paper_id)
        self._size += 1
        return True

    def remove(self, reviewer_id: str, paper_id: str) -> None:
        """Remove a pair.

        Raises
        ------
        KeyError
            If the pair is not in the assignment.
        """
        reviewers = self._by_paper.get(paper_id)
        if not reviewers or reviewer_id not in reviewers:
            raise KeyError((reviewer_id, paper_id))
        reviewers.discard(reviewer_id)
        self._by_reviewer[reviewer_id].discard(paper_id)
        self._size -= 1

    def discard(self, reviewer_id: str, paper_id: str) -> bool:
        """Remove a pair if present; returns whether anything was removed."""
        if not self.contains(reviewer_id, paper_id):
            return False
        self.remove(reviewer_id, paper_id)
        return True

    def clear_paper(self, paper_id: str) -> set[str]:
        """Remove every reviewer of ``paper_id``; returns the removed set."""
        removed = set(self._by_paper.get(paper_id, ()))
        for reviewer_id in removed:
            self.remove(reviewer_id, paper_id)
        return removed

    def update(self, other: "Assignment") -> None:
        """Add every pair of ``other`` into this assignment (set union)."""
        for reviewer_id, paper_id in other.pairs():
            self.add(reviewer_id, paper_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, reviewer_id: str, paper_id: str) -> bool:
        """Whether the pair is in the assignment."""
        return reviewer_id in self._by_paper.get(paper_id, ())

    def __contains__(self, pair: tuple[str, str]) -> bool:
        reviewer_id, paper_id = pair
        return self.contains(reviewer_id, paper_id)

    def reviewers_of(self, paper_id: str) -> frozenset[str]:
        """``A[p]`` — the ids of the reviewers currently assigned to a paper."""
        return frozenset(self._by_paper.get(paper_id, ()))

    def papers_of(self, reviewer_id: str) -> frozenset[str]:
        """``A[r]`` — the ids of the papers currently given to a reviewer."""
        return frozenset(self._by_reviewer.get(reviewer_id, ()))

    def group_size(self, paper_id: str) -> int:
        """Number of reviewers assigned to a paper."""
        return len(self._by_paper.get(paper_id, ()))

    def load(self, reviewer_id: str) -> int:
        """Number of papers assigned to a reviewer."""
        return len(self._by_reviewer.get(reviewer_id, ()))

    def papers(self) -> frozenset[str]:
        """All papers that have at least one reviewer."""
        return frozenset(p for p, reviewers in self._by_paper.items() if reviewers)

    def reviewers(self) -> frozenset[str]:
        """All reviewers that have at least one paper."""
        return frozenset(r for r, papers in self._by_reviewer.items() if papers)

    def pairs(self) -> Iterator[tuple[str, str]]:
        """Iterate over ``(reviewer_id, paper_id)`` pairs in a stable order."""
        for paper_id in sorted(self._by_paper):
            for reviewer_id in sorted(self._by_paper[paper_id]):
                yield reviewer_id, paper_id

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return self.pairs()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return set(self.pairs()) == set(other.pairs())

    def __repr__(self) -> str:
        return f"Assignment({self._size} pairs, {len(self.papers())} papers)"

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def copy(self) -> "Assignment":
        """A deep, independent copy of this assignment."""
        return Assignment(self.pairs())

    def union(self, other: "Assignment") -> "Assignment":
        """A new assignment containing the pairs of both operands."""
        merged = self.copy()
        merged.update(other)
        return merged

    def difference(self, other: "Assignment") -> "Assignment":
        """Pairs in this assignment that are not in ``other``."""
        return Assignment(pair for pair in self.pairs() if pair not in other)

    def symmetric_difference(self, other: "Assignment") -> "Assignment":
        """Pairs present in exactly one of the two assignments."""
        return Assignment(
            pair
            for pair in set(self.pairs()) ^ set(other.pairs())
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, list[str]]:
        """A JSON-friendly ``{paper_id: sorted [reviewer_id, ...]}`` mapping."""
        return {
            paper_id: sorted(reviewers)
            for paper_id, reviewers in sorted(self._by_paper.items())
            if reviewers
        }

    @classmethod
    def from_dict(cls, mapping: dict[str, Iterable[str]]) -> "Assignment":
        """Inverse of :meth:`to_dict`."""
        assignment = cls()
        for paper_id, reviewers in mapping.items():
            for reviewer_id in reviewers:
                assignment.add(reviewer_id, paper_id)
        return assignment
