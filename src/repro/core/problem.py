"""Problem definitions: WGRAP (Definition 3) and JRA (Definition 6).

:class:`WGRAPProblem` bundles everything a conference-assignment solver
needs — papers, reviewers, the two cardinality constraints, optional
conflicts of interest and the scoring function — and exposes the dense
numpy views (reviewer matrix, paper matrix, pairwise score matrix) that the
solvers use for speed.

:class:`JRAProblem` is the single-paper special case (Journal Reviewer
Assignment) solved exactly in :mod:`repro.jra`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from repro.core.assignment import Assignment
from repro.core.constraints import ConflictOfInterest, WorkloadConstraints
from repro.core.entities import Paper, Reviewer
from repro.core.scoring import ScoringFunction, get_scoring_function
from repro.core.vectors import TopicVector
from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    InfeasibleAssignmentError,
    InfeasibleProblemError,
)

# Entity id/position bookkeeping lives with the storage layer now, so every
# backend shares it; the historical private name stays importable.
from repro.store.base import EntityIndex as _EntityIndex

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.core.dense import DenseProblem
    from repro.core.delta import ViewStats
    from repro.store.base import ProblemStore

__all__ = [
    "WGRAPProblem",
    "JRAProblem",
    "ProblemMutation",
    "ProblemVersions",
    "MutationListener",
    "minimal_reviewer_workload",
]


class ProblemVersions(NamedTuple):
    """Per-kind version counters of one problem instance.

    Papers and reviewers are immutable on a given instance, so their
    counters move only across derived problems (``with_additional_paper``
    bumps ``papers``, ``without_reviewer`` bumps ``reviewers``); the
    conflict counter tracks the live
    :class:`~repro.core.constraints.ConflictOfInterest` container.
    Compiled views key their delta maintenance on these counters: a view
    whose recorded versions match needs no work, a moved conflict counter
    is absorbed by an in-place mask patch, and moved paper/reviewer
    counters are absorbed at derivation time by the delta constructors of
    :mod:`repro.core.delta`.
    """

    papers: int
    reviewers: int
    conflicts: int


def minimal_reviewer_workload(num_papers: int, num_reviewers: int, group_size: int) -> int:
    """The smallest workload ``delta_r`` that keeps the problem feasible.

    The paper's conference experiments use this value
    (``delta_r = ceil(P * delta_p / R)``) because program chairs want the
    load spread as evenly as possible, and it is also the hardest setting
    for the solvers since every reviewer must participate.
    """
    if num_reviewers <= 0:
        raise ConfigurationError("there must be at least one reviewer")
    return max(1, math.ceil(num_papers * group_size / num_reviewers))


@dataclass(frozen=True)
class ProblemMutation:
    """Description of one structural change between two problem instances.

    Emitted by the derived-problem constructors
    (:meth:`WGRAPProblem.with_additional_paper`,
    :meth:`WGRAPProblem.without_reviewer`) so that long-lived components —
    most importantly the score-matrix cache of
    :class:`repro.service.engine.AssignmentEngine` — can update their state
    incrementally instead of recomputing everything from the new instance.

    Attributes
    ----------
    kind:
        ``"add_paper"`` or ``"remove_reviewer"``.
    source:
        The problem the mutation was applied to.
    result:
        The derived problem.
    papers:
        Ids of the papers added/affected by the mutation.
    reviewers:
        Ids of the reviewers removed/affected by the mutation.
    """

    kind: str
    source: "WGRAPProblem"
    result: "WGRAPProblem"
    papers: tuple[str, ...] = ()
    reviewers: tuple[str, ...] = ()


#: Callback invoked with a :class:`ProblemMutation` after a derived problem
#: is constructed.  Listeners are carried over to the derived problem, so a
#: subscriber keeps observing the whole mutation chain.
MutationListener = Callable[[ProblemMutation], None]




class WGRAPProblem:
    """A Weighted-coverage Group-based Reviewer Assignment Problem instance.

    Parameters
    ----------
    papers:
        The submissions to be reviewed.
    reviewers:
        The reviewer pool.
    group_size:
        ``delta_p`` — every paper must receive exactly this many reviewers.
    reviewer_workload:
        ``delta_r`` — no reviewer may receive more papers than this.  When
        omitted, the minimal feasible workload
        ``ceil(P * delta_p / R)`` is used, matching the paper's experiments.
    conflicts:
        Optional conflicts of interest.
    scoring:
        Scoring-function name or instance; defaults to weighted coverage.
    validate_capacity:
        When true (the default), raise :class:`InfeasibleProblemError` if
        ``R * delta_r < P * delta_p`` or if some paper cannot possibly get
        ``delta_p`` non-conflicted reviewers.
    """

    def __init__(
        self,
        papers: Sequence[Paper],
        reviewers: Sequence[Reviewer],
        group_size: int,
        reviewer_workload: int | None = None,
        conflicts: ConflictOfInterest | Iterable[tuple[str, str]] | None = None,
        scoring: str | ScoringFunction | None = None,
        validate_capacity: bool = True,
    ) -> None:
        if not papers:
            raise ConfigurationError("a WGRAP instance needs at least one paper")
        if not reviewers:
            raise ConfigurationError("a WGRAP instance needs at least one reviewer")
        self._papers: tuple[Paper, ...] = tuple(papers)
        self._reviewers: tuple[Reviewer, ...] = tuple(reviewers)
        self._paper_index = _EntityIndex([paper.id for paper in self._papers], "paper")
        self._reviewer_index = _EntityIndex(
            [reviewer.id for reviewer in self._reviewers], "reviewer"
        )

        num_topics = self._papers[0].num_topics
        for entity in (*self._papers, *self._reviewers):
            if entity.num_topics != num_topics:
                raise DimensionMismatchError(
                    "all papers and reviewers must share the same number of topics"
                )
        self._num_topics = num_topics

        if reviewer_workload is None:
            reviewer_workload = minimal_reviewer_workload(
                len(self._papers), len(self._reviewers), group_size
            )
        self._constraints = WorkloadConstraints(
            group_size=group_size, reviewer_workload=reviewer_workload
        )

        if conflicts is None:
            self._conflicts = ConflictOfInterest()
        elif isinstance(conflicts, ConflictOfInterest):
            self._conflicts = conflicts.copy()
        else:
            self._conflicts = ConflictOfInterest(conflicts)

        self._scoring = get_scoring_function(scoring)

        self._reviewer_matrix: np.ndarray | None = None
        self._paper_matrix: np.ndarray | None = None
        self._pair_scores: np.ndarray | None = None
        #: backing arena when the pair scores live in a chain-shared buffer
        self._pair_arena = None
        self._dense_view: "DenseProblem | None" = None
        #: bound storage backend answering entity/candidate queries, or
        #: ``None`` until one is bound / lazily defaulted to the in-RAM one
        self._entity_store: "ProblemStore | None" = None
        self._mutation_listeners: list[MutationListener] = []
        self._papers_version = 0
        self._reviewers_version = 0
        self._view_stats: "ViewStats | None" = None

        if validate_capacity:
            self._validate_capacity()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def papers(self) -> tuple[Paper, ...]:
        """The papers, in a fixed order used by all index-based APIs."""
        return self._papers

    @property
    def reviewers(self) -> tuple[Reviewer, ...]:
        """The reviewers, in a fixed order used by all index-based APIs."""
        return self._reviewers

    @property
    def num_papers(self) -> int:
        """``P`` — number of papers."""
        return len(self._papers)

    @property
    def num_reviewers(self) -> int:
        """``R`` — number of reviewers."""
        return len(self._reviewers)

    @property
    def num_topics(self) -> int:
        """``T`` — number of topics."""
        return self._num_topics

    @property
    def group_size(self) -> int:
        """``delta_p`` — reviewers required per paper."""
        return self._constraints.group_size

    @property
    def reviewer_workload(self) -> int:
        """``delta_r`` — maximum papers per reviewer."""
        return self._constraints.reviewer_workload

    @property
    def constraints(self) -> WorkloadConstraints:
        """The cardinality constraints as a value object."""
        return self._constraints

    @property
    def conflicts(self) -> ConflictOfInterest:
        """The conflict-of-interest set (possibly empty)."""
        return self._conflicts

    @property
    def scoring(self) -> ScoringFunction:
        """The scoring function used to evaluate assignments."""
        return self._scoring

    @property
    def stage_workload(self) -> int:
        """Per-stage reviewer workload ``ceil(delta_r / delta_p)`` for SDGA."""
        return self._constraints.stage_workload

    @property
    def versions(self) -> ProblemVersions:
        """Per-kind version counters keying delta view maintenance."""
        return ProblemVersions(
            papers=self._papers_version,
            reviewers=self._reviewers_version,
            conflicts=self._conflicts.version,
        )

    @property
    def view_stats(self) -> "ViewStats":
        """Shared compiled-view maintenance counters.

        The same object is carried along the whole mutation chain (like
        mutation listeners), so a long-lived engine observes cumulative
        ``recompiles`` / ``delta_applies`` / prune counters across every
        derived instance it has served.
        """
        if self._view_stats is None:
            from repro.core.delta import ViewStats

            self._view_stats = ViewStats()
        return self._view_stats

    # ------------------------------------------------------------------
    # Id <-> index mapping
    # ------------------------------------------------------------------
    @property
    def paper_ids(self) -> tuple[str, ...]:
        """All paper ids in problem order."""
        return self._paper_index.ids

    @property
    def reviewer_ids(self) -> tuple[str, ...]:
        """All reviewer ids in problem order."""
        return self._reviewer_index.ids

    def paper_index(self, paper_id: str) -> int:
        """Position of a paper in :attr:`papers`."""
        return self._paper_index.index_of(paper_id, "paper")

    def reviewer_index(self, reviewer_id: str) -> int:
        """Position of a reviewer in :attr:`reviewers`."""
        return self._reviewer_index.index_of(reviewer_id, "reviewer")

    def paper_by_id(self, paper_id: str) -> Paper:
        """Look up a paper by id."""
        return self._papers[self.paper_index(paper_id)]

    def reviewer_by_id(self, reviewer_id: str) -> Reviewer:
        """Look up a reviewer by id."""
        return self._reviewers[self.reviewer_index(reviewer_id)]

    # ------------------------------------------------------------------
    # Dense views (cached)
    # ------------------------------------------------------------------
    @property
    def reviewer_matrix(self) -> np.ndarray:
        """Read-only ``(R, T)`` matrix of reviewer vectors."""
        if self._reviewer_matrix is None:
            matrix = np.vstack([reviewer.vector.values for reviewer in self._reviewers])
            matrix.setflags(write=False)
            self._reviewer_matrix = matrix
        return self._reviewer_matrix

    @property
    def paper_matrix(self) -> np.ndarray:
        """Read-only ``(P, T)`` matrix of paper vectors."""
        if self._paper_matrix is None:
            matrix = np.vstack([paper.vector.values for paper in self._papers])
            matrix.setflags(write=False)
            self._paper_matrix = matrix
        return self._paper_matrix

    def pair_score_matrix(self) -> np.ndarray:
        """Cached ``(R, P)`` matrix of single-reviewer scores ``c(r, p)``.

        Conflicted pairs keep their raw score here; solvers must consult
        :meth:`is_feasible_pair` separately, since some of them (e.g. the
        stochastic refinement probability model) need the unmasked scores.
        """
        return self.warm_pair_scores()

    def warm_pair_scores(self, parallel=None) -> np.ndarray:
        """Materialise (and cache) the pair-score matrix.

        ``parallel`` is an optional :class:`~repro.parallel.ParallelConfig`
        forwarded to :meth:`ScoringFunction.score_matrix
        <repro.core.scoring.ScoringFunction.score_matrix>`: large problems
        are then scored by the sharded worker-pool kernel, which produces
        a bitwise-identical matrix.  Because the result is cached, warming
        in parallel up front speeds up every solver that reads
        :meth:`pair_score_matrix` afterwards.
        """
        if self._pair_scores is None:
            if parallel is not None:
                scores = self._scoring.score_matrix(
                    self.reviewer_matrix, self.paper_matrix, parallel=parallel
                )
            else:
                scores = self._scoring.score_matrix(self.reviewer_matrix, self.paper_matrix)
            scores.setflags(write=False)
            self._pair_scores = scores
        return self._pair_scores

    def pair_score(self, reviewer_id: str, paper_id: str) -> float:
        """Single-reviewer score ``c(r, p)`` for one pair."""
        return float(
            self.pair_score_matrix()[
                self.reviewer_index(reviewer_id), self.paper_index(paper_id)
            ]
        )

    @property
    def cached_pair_scores(self) -> np.ndarray | None:
        """The pair-score matrix if it has been materialised, else ``None``.

        Long-lived components (the engine's score cache) use this to avoid
        re-scoring a problem some solver already warmed.
        """
        return self._pair_scores

    def adopt_pair_scores(self, scores: np.ndarray, copy: bool = True) -> None:
        """Seed the pair-score cache with an externally computed matrix.

        Used by :class:`repro.service.cache.ScoreMatrixCache` after a build
        or an incremental repair so solvers reading
        :meth:`pair_score_matrix` afterwards reuse the engine's matrix
        instead of re-scoring all ``R * P`` cells.  A read-only copy is
        stored (the cache keeps mutating its own buffer).  No-op when this
        problem already has a matrix; raises for a wrong shape.

        ``copy=False`` adopts a read-only *view* instead — the memmap-block
        cache backend uses this so an out-of-core matrix is never pulled
        into RAM; it is only safe because that backend never rewrites a
        region an adopted view maps (shape changes go to a fresh
        generation file).
        """
        if self._pair_scores is not None:
            return
        if copy:
            adopted = np.array(scores, dtype=np.float64)
        else:
            adopted = np.asarray(scores, dtype=np.float64).view()
        if adopted.shape != (self.num_reviewers, self.num_papers):
            raise DimensionMismatchError(
                f"pair-score matrix of shape {adopted.shape} does not fit a problem "
                f"with {self.num_reviewers} reviewers and {self.num_papers} papers"
            )
        adopted.setflags(write=False)
        self._pair_scores = adopted

    def dense_view(self) -> "DenseProblem":
        """The cached index-space compilation of this problem.

        Builds a :class:`repro.core.dense.DenseProblem` on first use and
        returns the same view afterwards, so every solver and every engine
        request shares one feasibility mask and one set of contiguous
        matrices per instance.  Derived problems receive their view by
        delta from the source's (see :mod:`repro.core.delta`), so the
        compile normally happens once per problem *chain*, not once per
        mutation.

        Papers, reviewers and constraints are immutable, but the conflict
        set is a live container (``problem.conflicts.add(...)`` is public
        API), so the view records the conflict
        :attr:`~repro.core.constraints.ConflictOfInterest.version` it
        compiled against; when the conflicts have moved since, the tail of
        the conflict changelog is replayed *in place* into the compiled
        feasibility mask — the same view object stays current, at a cost
        proportional to the number of edits.
        """
        view = self._dense_view
        current = self.versions
        if view is not None and view.versions[:2] == current[:2]:
            if view.versions.conflicts == current.conflicts:
                return view
            changes = self._conflicts.changes_since(view.versions.conflicts)
            # Patch only while the tail is available (not compacted away)
            # and cheaper than the O(R * P) recompile it replaces.
            if changes is not None and len(changes) <= max(
                1024, (self.num_reviewers * self.num_papers) // 64
            ):
                from repro.core.delta import patch_conflicts_in_place

                return patch_conflicts_in_place(view, changes, current.conflicts)
        # No view yet, a compacted/oversized conflict tail, or moved
        # paper/reviewer counters (impossible on one immutable instance
        # through the public API — a defensive recompile trigger).
        from repro.core.dense import DenseProblem
        from repro.obs.trace import get_tracer

        with get_tracer().span(
            "dense.recompile",
            reviewers=self.num_reviewers,
            papers=self.num_papers,
        ):
            view = DenseProblem(self)
        self._dense_view = view
        return view

    def invalidate_caches(self) -> None:
        """Drop every lazily built matrix and compiled view of this problem.

        The caches rebuild transparently on next use, so results are
        unaffected — this hook exists for benchmarks and tests that need a
        full-recompile baseline to compare the delta-maintenance path
        against.
        """
        self._reviewer_matrix = None
        self._paper_matrix = None
        self._pair_scores = None
        self._pair_arena = None
        self._dense_view = None

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def is_feasible_pair(self, reviewer_id: str, paper_id: str) -> bool:
        """Whether assigning the pair is allowed (i.e. not a conflict)."""
        return not self._conflicts.is_conflict(reviewer_id, paper_id)

    def candidate_reviewers(self, paper_id: str) -> list[str]:
        """Reviewer ids that may review ``paper_id`` (COIs removed).

        Entity access goes through the bound store handle: the in-RAM
        backend runs the historical scan, the SQLite backend answers the
        same question as an indexed anti-join — identical output either
        way (pinned by the store conformance grid).
        """
        return self.entity_store.candidate_reviewers(paper_id)

    def _validate_capacity(self) -> None:
        if not self._constraints.is_satisfiable(self.num_reviewers, self.num_papers):
            raise InfeasibleProblemError(
                f"insufficient review capacity: {self.num_reviewers} reviewers x "
                f"workload {self.reviewer_workload} < {self.num_papers} papers x "
                f"group size {self.group_size}"
            )
        for paper in self._papers:
            candidates = len(self.candidate_reviewers(paper.id))
            if candidates < self.group_size:
                raise InfeasibleProblemError(
                    f"paper {paper.id!r} has only {candidates} non-conflicted "
                    f"reviewers but needs {self.group_size}"
                )

    # ------------------------------------------------------------------
    # Assignment evaluation
    # ------------------------------------------------------------------
    def group_vector(self, assignment: Assignment, paper_id: str) -> np.ndarray:
        """The aggregated expertise vector of a paper's assigned group.

        Returns the zero vector when the paper has no reviewers yet.
        """
        reviewer_ids = assignment.reviewers_of(paper_id)
        if not reviewer_ids:
            return np.zeros(self._num_topics, dtype=np.float64)
        rows = [self.reviewer_index(rid) for rid in reviewer_ids]
        return self.reviewer_matrix[rows].max(axis=0)

    def paper_score(self, assignment: Assignment, paper_id: str) -> float:
        """Weighted coverage of one paper under the assignment."""
        paper = self.paper_by_id(paper_id)
        group_vector = TopicVector(self.group_vector(assignment, paper_id))
        return self._scoring.score(group_vector, paper.vector)

    def assignment_score(self, assignment: Assignment) -> float:
        """Total coverage score ``c(A)`` (the WGRAP objective)."""
        return float(
            sum(self.paper_score(assignment, paper.id) for paper in self._papers)
        )

    def paper_scores(self, assignment: Assignment) -> dict[str, float]:
        """Per-paper coverage scores keyed by paper id."""
        return {paper.id: self.paper_score(assignment, paper.id) for paper in self._papers}

    # ------------------------------------------------------------------
    # Assignment validation
    # ------------------------------------------------------------------
    def validate_assignment(
        self, assignment: Assignment, require_complete: bool = True
    ) -> None:
        """Check an assignment against this problem's constraints.

        Parameters
        ----------
        assignment:
            The assignment to check.
        require_complete:
            When true, every paper must have exactly ``delta_p`` reviewers;
            when false, papers may have fewer (useful for partial/staged
            assignments) but never more.

        Raises
        ------
        InfeasibleAssignmentError
            Describing every violated constraint.
        """
        violations: list[str] = []
        known_papers = set(self.paper_ids)
        known_reviewers = set(self.reviewer_ids)
        for reviewer_id, paper_id in assignment.pairs():
            if paper_id not in known_papers:
                violations.append(f"unknown paper {paper_id!r}")
            if reviewer_id not in known_reviewers:
                violations.append(f"unknown reviewer {reviewer_id!r}")
            if self._conflicts.is_conflict(reviewer_id, paper_id):
                violations.append(
                    f"conflict of interest: reviewer {reviewer_id!r} on paper {paper_id!r}"
                )
        for paper in self._papers:
            size = assignment.group_size(paper.id)
            if size > self.group_size:
                violations.append(
                    f"paper {paper.id!r} has {size} reviewers, more than "
                    f"delta_p={self.group_size}"
                )
            elif require_complete and size != self.group_size:
                violations.append(
                    f"paper {paper.id!r} has {size} reviewers, expected "
                    f"delta_p={self.group_size}"
                )
        for reviewer in self._reviewers:
            load = assignment.load(reviewer.id)
            if load > self.reviewer_workload:
                violations.append(
                    f"reviewer {reviewer.id!r} has {load} papers, more than "
                    f"delta_r={self.reviewer_workload}"
                )
        if violations:
            raise InfeasibleAssignmentError("; ".join(violations))

    def is_valid_assignment(
        self, assignment: Assignment, require_complete: bool = True
    ) -> bool:
        """Boolean form of :meth:`validate_assignment`."""
        try:
            self.validate_assignment(assignment, require_complete=require_complete)
        except InfeasibleAssignmentError:
            return False
        return True

    # ------------------------------------------------------------------
    # Storage handles
    # ------------------------------------------------------------------
    @property
    def entity_store(self) -> "ProblemStore":
        """The storage backend answering this problem's entity queries.

        Defaults to the in-RAM store (the historical path, extracted);
        a persistent backend binds itself here through
        :meth:`bind_entity_store` when it loads or tracks the problem.  A
        bound store is only consulted while it still tracks *this*
        instance — after a mutation rebinds it to the derived problem,
        queries against this one fall back to the in-RAM handle, so an
        older chain member never reads newer state.
        """
        store = self._entity_store
        if store is not None and store.tracks(self):
            return store
        from repro.store.memory import InMemoryProblemStore

        store = InMemoryProblemStore(self)
        self._entity_store = store
        return store

    def bind_entity_store(self, store: "ProblemStore") -> None:
        """Route entity/candidate queries through ``store`` (see above)."""
        self._entity_store = store

    # ------------------------------------------------------------------
    # Mutation hooks
    # ------------------------------------------------------------------
    def add_mutation_listener(self, listener: MutationListener) -> MutationListener:
        """Subscribe a callback to structural mutations of this problem.

        Problems are immutable, so a "mutation" is the construction of a
        derived instance through :meth:`with_additional_paper` or
        :meth:`without_reviewer`.  Listeners are carried over to the derived
        instance, so one subscription observes the whole chain of updates.
        The listener is returned so it can be kept for
        :meth:`remove_mutation_listener`.
        """
        if listener not in self._mutation_listeners:
            self._mutation_listeners.append(listener)
        return listener

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        """Unsubscribe a callback registered with :meth:`add_mutation_listener`."""
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def _emit_mutation(self, mutation: ProblemMutation) -> None:
        mutation.result._mutation_listeners = list(self._mutation_listeners)
        for listener in list(self._mutation_listeners):
            listener(mutation)

    def with_additional_paper(
        self,
        paper: Paper,
        reviewer_workload: int | None = None,
        pair_score_column: np.ndarray | None = None,
    ) -> "WGRAPProblem":
        """A derived problem with one late-arriving submission appended.

        The new paper is placed last, so index-based caches over the
        existing papers stay valid and only one column of pairwise scores
        needs to be computed — and the source's caches are carried over by
        delta: a cached pair-score matrix gains one freshly scored column
        (``R`` evaluations instead of ``R * P``), a compiled dense view is
        derived through :func:`repro.core.delta.dense_view_with_paper`, and
        the reviewer matrix is shared outright.  Every carried array is
        bitwise-equal to a cold rebuild.  Registered mutation listeners are
        notified with an ``"add_paper"`` event and carried over to the
        result.

        ``pair_score_column`` optionally supplies the new paper's ``(R,)``
        pair scores when the caller already computed them through the
        scoring kernel (the engine's staffing shortlist does), so the
        delta append does not score the column a second time.

        Raises
        ------
        ConfigurationError
            If the paper id already exists in the problem.
        """
        if paper.id in self._paper_index.positions:
            raise ConfigurationError(f"paper {paper.id!r} is already part of the problem")
        workload = (
            reviewer_workload if reviewer_workload is not None else self.reviewer_workload
        )
        derived = WGRAPProblem(
            papers=[*self._papers, paper],
            reviewers=self._reviewers,
            group_size=self.group_size,
            reviewer_workload=workload,
            conflicts=self._conflicts,
            scoring=self._scoring,
            validate_capacity=False,
        )
        derived._papers_version = self._papers_version + 1
        derived._reviewers_version = self._reviewers_version
        derived._view_stats = self.view_stats
        self._apply_add_paper_delta(derived, paper, pair_score_column)
        self._emit_mutation(
            ProblemMutation(
                kind="add_paper", source=self, result=derived, papers=(paper.id,)
            )
        )
        return derived

    def _apply_add_paper_delta(
        self,
        derived: "WGRAPProblem",
        paper: Paper,
        pair_score_column: np.ndarray | None = None,
    ) -> None:
        """Carry this problem's caches over to an add-paper derivation."""
        carried = False
        if self._reviewer_matrix is not None:
            derived._reviewer_matrix = self._reviewer_matrix  # identical rows, read-only
            carried = True
        if self._paper_matrix is not None:
            matrix = np.vstack([self._paper_matrix, paper.vector.values])
            matrix.setflags(write=False)
            derived._paper_matrix = matrix
            carried = True
        if self._pair_scores is not None:
            from repro.core.delta import appended_score_column

            derived._pair_scores, derived._pair_arena = appended_score_column(
                derived, self._pair_scores, self._pair_arena, paper,
                column=pair_score_column,
            )
            carried = True
        if self._dense_view is not None:
            from repro.core.delta import dense_view_with_paper

            # dense_view() first, so pending conflict edits are patched in
            # before the mask is extended.
            derived._dense_view = dense_view_with_paper(
                self.dense_view(), derived, paper
            )
            carried = True
        if carried:
            self.view_stats.delta_applies += 1

    def without_reviewer(self, reviewer_id: str) -> "WGRAPProblem":
        """A derived problem with one reviewer withdrawn from the pool.

        The relative order of the remaining reviewers is preserved, so
        row-based caches only need to drop a single row — which is exactly
        how the source's caches are carried over: the cached pair-score
        matrix and the compiled dense view lose one row with **zero**
        re-scoring (pair relations are independent across reviewers), and
        the paper-side arrays are shared outright (see
        :func:`repro.core.delta.dense_view_without_reviewer`).  Registered
        mutation listeners are notified with a ``"remove_reviewer"`` event
        and carried over to the result.

        Raises
        ------
        KeyError
            If the reviewer is not part of the problem.
        InfeasibleProblemError
            If the reviewer is the only one in the pool.
        """
        row = self.reviewer_index(reviewer_id)  # raises KeyError for unknown reviewers
        remaining = [
            reviewer for reviewer in self._reviewers if reviewer.id != reviewer_id
        ]
        if not remaining:
            raise InfeasibleProblemError("cannot withdraw the only reviewer in the pool")
        derived = WGRAPProblem(
            papers=self._papers,
            reviewers=remaining,
            group_size=self.group_size,
            reviewer_workload=self.reviewer_workload,
            conflicts=self._conflicts,
            scoring=self._scoring,
            validate_capacity=False,
        )
        derived._papers_version = self._papers_version
        derived._reviewers_version = self._reviewers_version + 1
        derived._view_stats = self.view_stats
        self._apply_remove_reviewer_delta(derived, reviewer_id, row)
        self._emit_mutation(
            ProblemMutation(
                kind="remove_reviewer",
                source=self,
                result=derived,
                reviewers=(reviewer_id,),
            )
        )
        return derived

    def _apply_remove_reviewer_delta(
        self, derived: "WGRAPProblem", reviewer_id: str, row: int
    ) -> None:
        """Carry this problem's caches over to a remove-reviewer derivation."""
        carried = False
        if self._paper_matrix is not None:
            derived._paper_matrix = self._paper_matrix  # identical rows, read-only
            carried = True
        if self._reviewer_matrix is not None:
            matrix = np.delete(self._reviewer_matrix, row, axis=0)
            matrix.setflags(write=False)
            derived._reviewer_matrix = matrix
            carried = True
        if self._pair_scores is not None:
            scores = np.delete(self._pair_scores, row, axis=0)
            scores.setflags(write=False)
            derived._pair_scores = scores
            carried = True
        if self._dense_view is not None:
            from repro.core.delta import dense_view_without_reviewer

            derived._dense_view = dense_view_without_reviewer(
                self.dense_view(), derived, reviewer_id
            )
            carried = True
        if carried:
            self.view_stats.delta_applies += 1

    # ------------------------------------------------------------------
    # Derived problems
    # ------------------------------------------------------------------
    def to_jra(self, paper: Paper | str) -> "JRAProblem":
        """The JRA sub-problem of finding a group for a single paper."""
        paper_obj = self.paper_by_id(paper) if isinstance(paper, str) else paper
        excluded = self._conflicts.reviewers_conflicting_with(paper_obj.id)
        return JRAProblem(
            paper=paper_obj,
            reviewers=self._reviewers,
            group_size=self.group_size,
            excluded_reviewers=excluded,
            scoring=self._scoring,
        )

    def with_scoring(self, scoring: str | ScoringFunction) -> "WGRAPProblem":
        """A copy of this problem evaluated under a different scoring function."""
        return WGRAPProblem(
            papers=self._papers,
            reviewers=self._reviewers,
            group_size=self.group_size,
            reviewer_workload=self.reviewer_workload,
            conflicts=self._conflicts,
            scoring=scoring,
            validate_capacity=False,
        )

    def with_reviewers(self, reviewers: Sequence[Reviewer]) -> "WGRAPProblem":
        """A copy of this problem with a replaced reviewer pool.

        Used by the h-index expertise-scaling experiment (Appendix C), which
        rescales every reviewer vector but keeps everything else fixed.
        """
        return WGRAPProblem(
            papers=self._papers,
            reviewers=reviewers,
            group_size=self.group_size,
            reviewer_workload=self.reviewer_workload,
            conflicts=self._conflicts,
            scoring=self._scoring,
            validate_capacity=False,
        )

    def __repr__(self) -> str:
        return (
            f"WGRAPProblem(P={self.num_papers}, R={self.num_reviewers}, "
            f"T={self.num_topics}, delta_p={self.group_size}, "
            f"delta_r={self.reviewer_workload})"
        )


class JRAProblem:
    """Journal Reviewer Assignment: find ``delta_p`` reviewers for one paper.

    Parameters
    ----------
    paper:
        The single submission.
    reviewers:
        The candidate pool ``R``.
    group_size:
        ``delta_p`` — how many reviewers are required.
    excluded_reviewers:
        Reviewer ids that must not be selected (conflicts of interest).
    scoring:
        Scoring-function name or instance; defaults to weighted coverage.
    """

    def __init__(
        self,
        paper: Paper,
        reviewers: Sequence[Reviewer],
        group_size: int,
        excluded_reviewers: Iterable[str] = (),
        scoring: str | ScoringFunction | None = None,
    ) -> None:
        if group_size < 1:
            raise ConfigurationError("group_size (delta_p) must be at least 1")
        excluded = frozenset(excluded_reviewers)
        candidates = tuple(r for r in reviewers if r.id not in excluded)
        if len(candidates) < group_size:
            raise InfeasibleProblemError(
                f"only {len(candidates)} eligible reviewers for a group of {group_size}"
            )
        for reviewer in candidates:
            if reviewer.num_topics != paper.num_topics:
                raise DimensionMismatchError(
                    "paper and reviewers must share the same number of topics"
                )
        self._paper = paper
        self._reviewers = candidates
        self._excluded = excluded
        self._group_size = group_size
        self._scoring = get_scoring_function(scoring)
        self._index = _EntityIndex([reviewer.id for reviewer in candidates], "reviewer")
        self._reviewer_matrix: np.ndarray | None = None
        self._sorted_topic_lists: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def paper(self) -> Paper:
        """The paper to be reviewed."""
        return self._paper

    @property
    def reviewers(self) -> tuple[Reviewer, ...]:
        """The eligible candidate reviewers (conflicts already removed)."""
        return self._reviewers

    @property
    def excluded_reviewers(self) -> frozenset[str]:
        """Reviewer ids excluded by conflicts of interest."""
        return self._excluded

    @property
    def group_size(self) -> int:
        """``delta_p`` — the required group size."""
        return self._group_size

    @property
    def num_reviewers(self) -> int:
        """Number of eligible candidates."""
        return len(self._reviewers)

    @property
    def num_topics(self) -> int:
        """Number of topics."""
        return self._paper.num_topics

    @property
    def scoring(self) -> ScoringFunction:
        """The scoring function."""
        return self._scoring

    @property
    def reviewer_ids(self) -> tuple[str, ...]:
        """Candidate reviewer ids in problem order."""
        return self._index.ids

    def reviewer_index(self, reviewer_id: str) -> int:
        """Position of a candidate in :attr:`reviewers`."""
        return self._index.index_of(reviewer_id, "reviewer")

    def reviewer_by_id(self, reviewer_id: str) -> Reviewer:
        """Look up a candidate reviewer by id."""
        return self._reviewers[self.reviewer_index(reviewer_id)]

    @property
    def reviewer_matrix(self) -> np.ndarray:
        """Read-only ``(R, T)`` matrix of candidate vectors."""
        if self._reviewer_matrix is None:
            matrix = np.vstack([reviewer.vector.values for reviewer in self._reviewers])
            matrix.setflags(write=False)
            self._reviewer_matrix = matrix
        return self._reviewer_matrix

    @property
    def paper_vector(self) -> np.ndarray:
        """The paper's topic weights as a plain array."""
        return self._paper.vector.values

    def sorted_topic_lists(self) -> tuple[np.ndarray, np.ndarray]:
        """The T sorted reviewer lists of BBA (Section 3), cached.

        Returns ``(sorted_reviewers, sorted_values)``: for every topic
        ``t``, ``sorted_reviewers[t]`` lists reviewer indices by expertise
        on ``t`` in descending order (stable, so ties keep index order)
        and ``sorted_values[t]`` the corresponding weights.  Cached on the
        instance because the engine's JRA sub-problem cache re-solves the
        same instance across journal queries — the ``O(T * R log R)``
        pre-sort is then paid once, not per query.
        """
        if self._sorted_topic_lists is None:
            order = np.argsort(-self.reviewer_matrix, axis=0, kind="stable").T
            sorted_reviewers = np.ascontiguousarray(order)
            sorted_values = np.take_along_axis(
                self.reviewer_matrix.T, sorted_reviewers, axis=1
            )
            self._sorted_topic_lists = (sorted_reviewers, sorted_values)
        return self._sorted_topic_lists

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def group_score(self, reviewer_ids: Iterable[str]) -> float:
        """Coverage score of the group formed by the given reviewer ids."""
        ids = list(reviewer_ids)
        if not ids:
            return 0.0
        rows = [self.reviewer_index(rid) for rid in ids]
        group_vector = TopicVector(self.reviewer_matrix[rows].max(axis=0))
        return self._scoring.score(group_vector, self._paper.vector)

    def validate_group(self, reviewer_ids: Iterable[str]) -> None:
        """Check a candidate group for size, duplicates and exclusions.

        Raises
        ------
        InfeasibleAssignmentError
            If the group is not a feasible JRA answer.
        """
        ids = list(reviewer_ids)
        if len(set(ids)) != len(ids):
            raise InfeasibleAssignmentError("a reviewer group must not repeat reviewers")
        if len(ids) != self._group_size:
            raise InfeasibleAssignmentError(
                f"group has {len(ids)} reviewers, expected delta_p={self._group_size}"
            )
        for reviewer_id in ids:
            if reviewer_id in self._excluded:
                raise InfeasibleAssignmentError(
                    f"reviewer {reviewer_id!r} is excluded by a conflict of interest"
                )
            self.reviewer_index(reviewer_id)

    def __repr__(self) -> str:
        return (
            f"JRAProblem(paper={self._paper.id!r}, R={self.num_reviewers}, "
            f"delta_p={self._group_size})"
        )
