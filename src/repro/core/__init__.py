"""Core data model of the WGRAP library.

This package contains everything that is shared by all solvers: topic
vectors, reviewers, papers, reviewer groups, scoring functions, the
assignment container, the WGRAP/JRA problem definitions and the reductions
to earlier RAP formulations.
"""

from repro.core.assignment import Assignment
from repro.core.constraints import ConflictOfInterest, WorkloadConstraints
from repro.core.delta import PrunedCandidateGenerator, ViewStats
from repro.core.dense import DenseProblem
from repro.core.entities import Paper, Reviewer, ReviewerGroup
from repro.core.problem import (
    JRAProblem,
    MutationListener,
    ProblemMutation,
    ProblemVersions,
    WGRAPProblem,
    minimal_reviewer_workload,
)
from repro.core.reductions import (
    RAPFormulation,
    binary_topic_vector,
    expand_problem_for_pairwise_objective,
    formulation_table,
    set_coverage,
    sgrap_problem_from_topic_sets,
)
from repro.core.scoring import (
    DotProduct,
    PaperCoverage,
    ReviewerCoverage,
    ScoringFunction,
    WeightedCoverage,
    available_scoring_functions,
    get_scoring_function,
    group_coverage,
    marginal_gain,
    weighted_coverage,
)
from repro.core.vectors import TopicVector, as_topic_vector, stack_vectors

__all__ = [
    "Assignment",
    "ConflictOfInterest",
    "DenseProblem",
    "PrunedCandidateGenerator",
    "ViewStats",
    "WorkloadConstraints",
    "Paper",
    "Reviewer",
    "ReviewerGroup",
    "JRAProblem",
    "MutationListener",
    "ProblemMutation",
    "ProblemVersions",
    "WGRAPProblem",
    "minimal_reviewer_workload",
    "RAPFormulation",
    "binary_topic_vector",
    "expand_problem_for_pairwise_objective",
    "formulation_table",
    "set_coverage",
    "sgrap_problem_from_topic_sets",
    "DotProduct",
    "PaperCoverage",
    "ReviewerCoverage",
    "ScoringFunction",
    "WeightedCoverage",
    "available_scoring_functions",
    "get_scoring_function",
    "group_coverage",
    "marginal_gain",
    "weighted_coverage",
    "TopicVector",
    "as_topic_vector",
    "stack_vectors",
]
