"""Delta maintenance of compiled views + exact pruned candidate generation.

PR 3's :mod:`repro.core.dense` made a *single* solve fast by compiling the
problem into index space once.  This module makes the *mutate -> resolve*
loop fast, in the spirit of incremental view maintenance (answer each
update with work proportional to the delta, not the database):

* **Delta-derived views** — when :meth:`WGRAPProblem.with_additional_paper
  <repro.core.problem.WGRAPProblem.with_additional_paper>` /
  :meth:`~repro.core.problem.WGRAPProblem.without_reviewer` construct a
  derived problem, the source's compiled :class:`~repro.core.dense.DenseProblem`
  and its cached pair-score matrix are carried over by delta: a late paper
  appends one column to the shared pair-score matrix, ``paper_totals`` and
  the feasibility mask (``R`` scoring evaluations instead of ``R * P``); a
  withdrawn reviewer drops one row with **zero** re-scoring.  Every carried
  array is bitwise-equal to what a cold recompile would produce — the
  object path stays the oracle, pinned by ``tests/test_delta_view.py``.
  The *scoring* work — the dominant ``O(R * P * T)`` term — is strictly
  delta-proportional; the index-space arrays themselves are carried by
  cheap copies (the pair-score matrix amortised through a chain-shared
  :class:`ScoreArena`, the boolean mask and topic matrices by plain
  ``O(R * P / 8)`` / ``O(P * T)`` memcpys that are orders of magnitude
  below the re-scoring they replace).
* **In-place conflict patches** — the live
  :class:`~repro.core.constraints.ConflictOfInterest` container keeps a
  changelog; a compiled view that has fallen behind replays the tail of
  that log directly into its ``(R, P)`` feasibility mask instead of
  recompiling (work proportional to the number of edits).
* **Exact pruned candidate generation** — per-paper reviewer shortlists
  ordered by an *admissible* upper bound on marginal gain (the pair score:
  submodularity gives ``gain(r | G) <= gain(r | {}) = c(r, p)`` for every
  scoring function whose per-topic contribution is monotone and
  non-negative, which the registry contract requires).  A column argmax is
  answered by evaluating exact gains for only the top of the shortlist and
  *certifying* the result against the next candidate's bound; whenever the
  bound cannot certify the argmax the generator falls back to the full
  column, so the answer is always bitwise-identical to the unpruned scan.

All maintenance work is counted on a :class:`ViewStats` object shared
along the whole mutation chain of a problem, which the assignment engine
exposes through its ``stats`` request (``delta_applies``, ``recompiles``,
``conflict_patches``, ``prune_certified``, ``prune_fallbacks``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dense import DenseProblem
from repro.obs.trace import get_tracer

TRACER = get_tracer()

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.core.entities import Paper
    from repro.core.problem import WGRAPProblem

__all__ = [
    "PRUNE_MARGIN",
    "ScoreArena",
    "ViewStats",
    "PrunedCandidateGenerator",
    "appended_score_column",
    "dense_view_with_paper",
    "dense_view_without_reviewer",
    "patch_conflicts_in_place",
]

#: Safety margin used by every certification test.  The admissible bound
#: holds exactly in real arithmetic; in float64 both sides carry a few
#: ulps of rounding from the topic-axis reduction (relative error O(T *
#: eps) ~ 1e-14 for the T ~ 30 workloads of the paper).  Certifying only a
#: strictly larger-by-margin winner keeps the pruned result bitwise-equal
#: to the full scan even when rounding nudges a bound below a true gain;
#: anything closer than the margin falls back to the full column.
PRUNE_MARGIN = 1e-9


@dataclass
class ViewStats:
    """Counters describing how compiled views were maintained.

    One instance is shared along a problem's whole mutation chain (like
    mutation listeners), so a long-lived engine reads cumulative numbers.

    Attributes
    ----------
    recompiles:
        Full :class:`~repro.core.dense.DenseProblem` compilations.
    delta_applies:
        Mutations absorbed by delta derivation (caches carried over to the
        derived problem instead of being rebuilt from scratch).
    conflict_patches:
        In-place feasibility-mask repairs from the conflict changelog.
    prune_certified:
        Candidate-generator answers certified by the admissible bound
        (exact without evaluating the full column).
    prune_fallbacks:
        Candidate-generator answers where the bound could not certify the
        argmax and the full column was evaluated.
    """

    recompiles: int = 0
    delta_applies: int = 0
    conflict_patches: int = 0
    prune_certified: int = 0
    prune_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for the engine's ``stats`` request)."""
        return {
            "recompiles": self.recompiles,
            "delta_applies": self.delta_applies,
            "conflict_patches": self.conflict_patches,
            "prune_certified": self.prune_certified,
            "prune_fallbacks": self.prune_fallbacks,
        }


# ----------------------------------------------------------------------
# Delta-derived pair scores
# ----------------------------------------------------------------------
class ScoreArena:
    """A shared, geometrically grown backing buffer for pair-score matrices.

    Appending a column to a C-ordered ``(R, P)`` matrix with
    ``np.concatenate`` copies all ``R * P`` cells.  Along a mutation chain
    that turns every late paper into a full-matrix copy, so the chain
    shares one over-allocated buffer instead: each problem's matrix is the
    read-only view of the first ``used`` columns, and appending writes one
    column into the reserved tail.  A column is claimed in place only when
    the parent owns the buffer *tip* (``used`` equals the parent's column
    count); deriving twice from the same parent — a branched chain — falls
    back to a fresh buffer, so sibling problems can never see each other's
    columns.
    """

    __slots__ = ("buffer", "used")

    def __init__(self, buffer: np.ndarray, used: int) -> None:
        self.buffer = buffer
        self.used = used


def appended_score_column(
    problem: "WGRAPProblem",
    parent_scores: np.ndarray,
    parent_arena: ScoreArena | None,
    paper: "Paper",
    column: np.ndarray | None = None,
) -> tuple[np.ndarray, ScoreArena]:
    """The pair-score matrix of ``problem`` with the new paper's column scored.

    ``parent_scores`` is the source problem's cached ``(R, P)`` matrix; the
    result appends one freshly scored ``(R, 1)`` column — ``R`` evaluations
    instead of ``R * (P + 1)``.  The column goes through
    :func:`repro.parallel.sharding.score_appended_columns` (the same
    scoring kernel a cold rebuild uses), and that kernel's topic reduction
    is per-column, so the appended matrix is bitwise-equal to a full
    re-score of the derived problem.  A caller that already scored the
    column through the same kernel — e.g. the engine's staffing-shortlist
    pass — can hand it in via ``column`` so the pairs are scored exactly
    once per mutation.  The backing storage comes from a
    :class:`ScoreArena` shared along the chain, so the full-matrix copy is
    paid only when the arena must grow (or the chain branched), not on
    every append.
    """
    from repro.parallel.sharding import score_appended_columns

    if column is None:
        column = score_appended_columns(
            problem.scoring,
            problem.reviewer_matrix,
            np.asarray(paper.vector.values, dtype=np.float64)[None, :],
        )
    else:
        column = np.asarray(column, dtype=np.float64).reshape(
            problem.num_reviewers, 1
        )
    num_reviewers, num_papers = parent_scores.shape
    arena = parent_arena
    if (
        arena is None
        or arena.used != num_papers
        or arena.buffer.shape[0] != num_reviewers
        or arena.buffer.shape[1] <= num_papers
    ):
        capacity = num_papers + 1 + max(16, (num_papers + 1) // 8)
        data = np.empty((num_reviewers, capacity), dtype=np.float64)
        data[:, :num_papers] = parent_scores
        arena = ScoreArena(data, num_papers)
    arena.buffer[:, num_papers] = column[:, 0]
    arena.used = num_papers + 1
    scores = arena.buffer[:, : num_papers + 1]
    scores.setflags(write=False)
    return scores, arena


# ----------------------------------------------------------------------
# Delta-derived dense views
# ----------------------------------------------------------------------
def _blank_view(problem: "WGRAPProblem") -> DenseProblem:
    """An uninitialised view shell bound to ``problem`` (no compilation)."""
    view = DenseProblem.__new__(DenseProblem)
    view.problem = problem
    view.num_reviewers = problem.num_reviewers
    view.num_papers = problem.num_papers
    view.num_topics = problem.num_topics
    view.group_size = problem.group_size
    view.reviewer_workload = problem.reviewer_workload
    view.stage_workload = problem.stage_workload
    view.versions = problem.versions
    view.view_stats = problem.view_stats
    view._id_rank = None
    view._empty_stage_exact = None
    return view


def dense_view_with_paper(
    parent: DenseProblem, problem: "WGRAPProblem", paper: "Paper"
) -> DenseProblem:
    """Derive the compiled view of ``source.with_additional_paper(paper)``.

    The reviewer-side arrays (and the id ranks) are shared with the parent
    view outright; the paper-side arrays gain one appended entry; the
    feasibility mask gains one column built from the new paper's conflicts
    only.  Every array matches a full compile of ``problem`` bitwise.
    """
    with TRACER.span("delta.append_paper", paper=paper.id):
        return _dense_view_with_paper(parent, problem, paper)


def _dense_view_with_paper(
    parent: DenseProblem, problem: "WGRAPProblem", paper: "Paper"
) -> DenseProblem:
    view = _blank_view(problem)
    view.reviewer_matrix = parent.reviewer_matrix
    view.reviewer_pos = parent.reviewer_pos
    view._id_rank = parent._id_rank

    paper_row = np.asarray(paper.vector.values, dtype=np.float64)[None, :]
    paper_matrix = np.concatenate([parent.paper_matrix, paper_row], axis=0)
    view.paper_matrix = np.ascontiguousarray(paper_matrix)
    # The appended total goes through the same per-row reduction a full
    # compile's paper_matrix.sum(axis=1) performs.
    tail_total = view.paper_matrix[-1:].sum(axis=1)
    view.paper_totals = np.concatenate([parent.paper_totals, tail_total])
    view.zero_mass = view.paper_totals <= 0.0
    view.safe_totals = np.where(view.zero_mass, 1.0, view.paper_totals)

    view.paper_pos = dict(parent.paper_pos)
    view.paper_pos[paper.id] = view.num_papers - 1

    column = np.ones((view.num_reviewers, 1), dtype=bool)
    for reviewer_id in problem.conflicts.reviewers_conflicting_with(paper.id):
        row = view.reviewer_pos.get(reviewer_id)
        if row is not None:
            column[row, 0] = False
    feasible = np.concatenate([parent.feasible, column], axis=1)
    feasible.setflags(write=False)
    view.feasible = feasible
    return view


def dense_view_without_reviewer(
    parent: DenseProblem, problem: "WGRAPProblem", reviewer_id: str
) -> DenseProblem:
    """Derive the compiled view of ``source.without_reviewer(reviewer_id)``.

    The paper-side arrays are shared with the parent view; the reviewer
    matrix and the feasibility mask drop one row (no re-scoring, pair
    relations are independent across reviewers); the id ranks are rebuilt
    lazily since relative ranks shift past the removed reviewer.
    """
    with TRACER.span("delta.drop_reviewer", reviewer=reviewer_id):
        return _dense_view_without_reviewer(parent, problem, reviewer_id)


def _dense_view_without_reviewer(
    parent: DenseProblem, problem: "WGRAPProblem", reviewer_id: str
) -> DenseProblem:
    row = parent.reviewer_pos[reviewer_id]
    view = _blank_view(problem)
    view.paper_matrix = parent.paper_matrix
    view.paper_totals = parent.paper_totals
    view.safe_totals = parent.safe_totals
    view.zero_mass = parent.zero_mass
    view.paper_pos = parent.paper_pos

    view.reviewer_matrix = np.ascontiguousarray(
        np.delete(parent.reviewer_matrix, row, axis=0)
    )
    view.reviewer_pos = {rid: i for i, rid in enumerate(problem.reviewer_ids)}
    feasible = np.delete(parent.feasible, row, axis=0)
    feasible.setflags(write=False)
    view.feasible = feasible
    return view


def patch_conflicts_in_place(
    view: DenseProblem, changes: tuple[tuple[str, str, bool], ...], version: int
) -> DenseProblem:
    """Replay conflict edits directly into a view's feasibility mask.

    ``changes`` is the tail of the conflict changelog past the version the
    view compiled against (see :meth:`ConflictOfInterest.changes_since
    <repro.core.constraints.ConflictOfInterest.changes_since>`); each entry
    flips one cell of the ``(R, P)`` mask, so the repair costs the number
    of edits instead of an ``R x P`` recompile.  Edits naming entities the
    view does not know are ignored (they cannot appear in an assignment of
    this problem anyway).  The view object — and therefore every array a
    caller obtained from it earlier — stays the same; only the mask cells
    change.
    """
    with TRACER.span("delta.conflict_patch", edits=len(changes)):
        return _patch_conflicts_in_place(view, changes, version)


def _patch_conflicts_in_place(
    view: DenseProblem, changes: tuple[tuple[str, str, bool], ...], version: int
) -> DenseProblem:
    feasible = view.feasible
    feasible.setflags(write=True)
    try:
        reviewer_pos = view.reviewer_pos
        paper_pos = view.paper_pos
        for reviewer_id, paper_id, is_conflict in changes:
            row = reviewer_pos.get(reviewer_id)
            column = paper_pos.get(paper_id)
            if row is not None and column is not None:
                feasible[row, column] = not is_conflict
    finally:
        feasible.setflags(write=False)
    view.versions = view.versions._replace(conflicts=version)
    view.view_stats.conflict_patches += 1
    return view


# ----------------------------------------------------------------------
# Exact pruned candidate generation
# ----------------------------------------------------------------------
class PrunedCandidateGenerator:
    """Exact column argmax over marginal gains via top-k shortlists.

    For every paper the generator maintains an *admissible upper bound*
    per reviewer on the marginal gain of joining the paper's group:

    * initially the pair score (submodularity:
      ``gain(r | G) <= gain(r | {}) = c(r, p)`` for monotone,
      non-negative per-topic contributions);
    * after a reviewer's gain has been evaluated exactly, that value —
      groups only ever grow, and submodularity makes gains non-increasing
      in the group, so the last exact evaluation stays an upper bound
      (the CELF lazy-evaluation invariant, here batched and certified).

    A column argmax evaluates exact gains for only the ``width`` eligible
    candidates with the largest bounds and *certifies* the winner against
    the largest unevaluated bound; when certification fails (winner within
    :data:`PRUNE_MARGIN` of the bound) the full column is evaluated
    instead — so the answer is always bitwise-identical to masking the
    full :meth:`DenseProblem.gains_for_paper
    <repro.core.dense.DenseProblem.gains_for_paper>` column and taking its
    ``max``/``argmax`` (first-row tie order included), which is exactly
    the contract ``tests/test_property_pruning.py`` pins.

    The bound-tightening invariant requires each paper's group vector to
    be *non-decreasing* across calls (greedy semantics: members are only
    ever added).  Use one generator per constructive solve; for searches
    that shrink groups, create a fresh generator.

    Parameters
    ----------
    dense:
        The compiled view to generate candidates for.
    width:
        Shortlist width per evaluation; ``None`` picks a default scaled to
        the group size.  A width of ``num_reviewers`` disables pruning
        while keeping the identical code path.
    """

    def __init__(self, dense: DenseProblem, width: int | None = None) -> None:
        self._dense = dense
        self._scores = dense.pair_scores()
        if width is None:
            width = max(16, 4 * dense.group_size)
        self._width = max(1, min(int(width), dense.num_reviewers))
        #: a full-width generator prunes nothing; it keeps the identical
        #: code path but stays silent in the prune counters
        self._counting = self._width < dense.num_reviewers
        #: per-paper upper bounds on the current marginal gains
        self._bounds: dict[int, np.ndarray] = {}

    @property
    def width(self) -> int:
        """The shortlist width in use."""
        return self._width

    def _column_bounds(self, paper_idx: int) -> np.ndarray:
        bounds = self._bounds.get(paper_idx)
        if bounds is None:
            bounds = np.array(self._scores[:, paper_idx])
            self._bounds[paper_idx] = bounds
        return bounds

    def column_argmax(
        self, paper_idx: int, group_vector: np.ndarray, eligible: np.ndarray
    ) -> tuple[float, int]:
        """Exact ``(max gain, argmax row)`` over the eligible reviewers.

        Returns ``(-inf, -1)`` when no reviewer is eligible.  Ties are
        broken by the smallest row index, matching ``argmax`` on the full
        masked column.
        """
        dense = self._dense
        bounds = self._column_bounds(paper_idx)
        masked = np.where(eligible, bounds, -np.inf)
        if eligible.size > self._width:
            split = np.argpartition(-masked, self._width)
            head = split[: self._width]
            head = head[np.isfinite(masked[head])]
            tail_bound = float(masked[split[self._width :]].max())
        else:
            head = np.flatnonzero(eligible)
            tail_bound = float("-inf")
        if head.size == 0:
            return float("-inf"), -1
        gains = dense.gains_for_rows(group_vector, paper_idx, head)
        # The exact values are valid bounds for every later (larger) group.
        bounds[head] = gains
        best = float(gains.max())
        if not np.isfinite(tail_bound) or best > tail_bound + PRUNE_MARGIN:
            if self._counting:
                dense.view_stats.prune_certified += 1
            return best, int(head[gains == best].min())
        # The bound cannot separate the shortlist winner from the
        # unevaluated tail: evaluate the full column.
        if self._counting:
            dense.view_stats.prune_fallbacks += 1
        column = dense.gains_for_paper(group_vector, paper_idx)
        bounds[:] = column
        column = np.where(eligible, column, -np.inf)
        row = int(column.argmax())
        return float(column[row]), row
