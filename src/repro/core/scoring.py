"""Scoring functions for reviewer-paper assignment quality.

The paper's default quality measure is the *weighted coverage*
(Definition 1):

.. math::

    c(\\vec r, \\vec p) = \\frac{\\sum_t \\min(\\vec r[t], \\vec p[t])}
                               {\\sum_t \\vec p[t]}

Appendix B additionally studies three alternatives (reviewer coverage,
paper coverage and dot product, Table 5) and proves that the SDGA
approximation guarantee holds for *any* scoring function whose per-topic
contribution is summed independently (C.1) and is monotonically
non-decreasing in the reviewer expertise (C.2).

Every scoring function here follows that template: subclasses only provide
the element-wise per-topic contribution ``f(r[t], p[t])`` and the shared
base class derives

* single pair scores,
* group scores (the group vector is the per-topic maximum, Definition 2),
* marginal gains of adding one reviewer to a group (Definition 8),
* fully vectorised score matrices and gain vectors used by the conference
  assignment solvers.

This guarantees that *all* solvers in :mod:`repro.cra` and :mod:`repro.jra`
work with every registered scoring function, exactly as claimed by the
paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.core.vectors import TopicVector, as_topic_vector
from repro.exceptions import DimensionMismatchError, UnknownScoringFunctionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel imports core)
    from repro.parallel.config import ParallelConfig

__all__ = [
    "ScoringFunction",
    "WeightedCoverage",
    "ReviewerCoverage",
    "PaperCoverage",
    "DotProduct",
    "get_scoring_function",
    "register_scoring_function",
    "available_scoring_functions",
    "weighted_coverage",
    "group_coverage",
    "marginal_gain",
]


class ScoringFunction(ABC):
    """Base class for submodular reviewer/paper scoring functions.

    A scoring function assigns the quality ``score(r, p)`` of a single
    reviewer (or a whole reviewer group, represented by its per-topic
    maximum vector) reviewing a paper.  Scores are normalised by the total
    topic mass of the paper so they live in ``[0, 1]`` for normalised
    vectors.
    """

    #: short machine-readable name used in the registry and in reports
    name: str = "abstract"

    # ------------------------------------------------------------------
    # The single hook subclasses must implement
    # ------------------------------------------------------------------
    @abstractmethod
    def topic_contribution(self, reviewer: np.ndarray, paper: np.ndarray) -> np.ndarray:
        """Element-wise per-topic contribution ``f(r[t], p[t])``.

        Both arguments are broadcastable numpy arrays; the result must have
        the broadcast shape.  The contribution must be non-decreasing in
        ``reviewer`` for the submodularity proof of Appendix B to apply.
        """

    # ------------------------------------------------------------------
    # Scalar interface
    # ------------------------------------------------------------------
    def numerator(self, reviewer: TopicVector, paper: TopicVector) -> float:
        """The un-normalised score of a reviewer (or group) vector."""
        reviewer = as_topic_vector(reviewer)
        paper = as_topic_vector(paper)
        if reviewer.num_topics != paper.num_topics:
            raise DimensionMismatchError(
                "reviewer and paper vectors must have the same number of topics"
            )
        return float(self.topic_contribution(reviewer.values, paper.values).sum())

    def score(self, reviewer: TopicVector, paper: TopicVector) -> float:
        """Normalised score ``numerator / sum_t p[t]``.

        A paper with zero topic mass scores zero against every reviewer.
        """
        paper = as_topic_vector(paper)
        denominator = paper.total()
        if denominator <= 0.0:
            return 0.0
        return self.numerator(reviewer, paper) / denominator

    def group_score(self, group_vectors: list[TopicVector] | TopicVector, paper: TopicVector) -> float:
        """Score of a whole reviewer group against a paper.

        ``group_vectors`` may be either the already-aggregated group vector
        or the list of member vectors (which is aggregated here with the
        per-topic maximum of Definition 2).  An empty list scores zero.
        """
        if isinstance(group_vectors, TopicVector):
            group_vector = group_vectors
        else:
            vectors = list(group_vectors)
            if not vectors:
                return 0.0
            group_vector = TopicVector.group_maximum(vectors)
        return self.score(group_vector, paper)

    def marginal_gain(
        self,
        group_vector: TopicVector | None,
        reviewer: TopicVector,
        paper: TopicVector,
    ) -> float:
        """Gain of adding ``reviewer`` to a group (Definition 8).

        ``group_vector`` is the current group's aggregated vector, or
        ``None`` / a zero vector for an empty group.
        """
        reviewer = as_topic_vector(reviewer)
        paper = as_topic_vector(paper)
        if group_vector is None:
            return self.score(reviewer, paper)
        group_vector = as_topic_vector(group_vector)
        extended = group_vector.maximum(reviewer)
        return self.score(extended, paper) - self.score(group_vector, paper)

    # ------------------------------------------------------------------
    # Vectorised interface used by the solvers
    # ------------------------------------------------------------------
    def score_matrix(
        self,
        reviewer_matrix: np.ndarray,
        paper_matrix: np.ndarray,
        parallel: "ParallelConfig | None" = None,
    ) -> np.ndarray:
        """Pairwise score matrix of shape ``(R, P)``.

        Parameters
        ----------
        reviewer_matrix:
            Dense ``(R, T)`` matrix of reviewer vectors.
        paper_matrix:
            Dense ``(P, T)`` matrix of paper vectors.
        parallel:
            Optional :class:`~repro.parallel.ParallelConfig`.  When given,
            construction is delegated to the sharded worker-pool kernel of
            :mod:`repro.parallel.sharding`, which is bitwise-identical to
            the serial path (problems below the config's serial threshold
            run the serial path unchanged).
        """
        if parallel is not None:
            from repro.parallel.sharding import sharded_score_matrix

            return sharded_score_matrix(self, reviewer_matrix, paper_matrix, parallel)
        reviewer_matrix = np.asarray(reviewer_matrix, dtype=np.float64)
        paper_matrix = np.asarray(paper_matrix, dtype=np.float64)
        if reviewer_matrix.shape[1] != paper_matrix.shape[1]:
            raise DimensionMismatchError(
                "reviewer and paper matrices must agree on the number of topics"
            )
        # Broadcast to (R, P, T) in one shot.  Fine for the paper's
        # workloads (R, P in the hundreds); at service scale prefer the
        # cache-blocked/sharded kernel via the ``parallel`` argument, which
        # applies the same score_block kernel in cache-sized pieces.
        denominators = paper_matrix.sum(axis=1)
        safe = np.where(denominators > 0.0, denominators, 1.0)
        scores = self.score_block(reviewer_matrix, paper_matrix, safe)
        scores[:, denominators <= 0.0] = 0.0
        return scores

    def score_block(
        self,
        reviewer_matrix: np.ndarray,
        paper_block: np.ndarray,
        safe_denominators: np.ndarray,
    ) -> np.ndarray:
        """Scores of every reviewer against one contiguous block of papers.

        The one shared aggregation behind every matrix builder — the
        serial :meth:`score_matrix` (single block) and the blocked/sharded
        kernels of :mod:`repro.parallel.sharding` (many blocks) — so the
        two paths cannot drift apart.  ``safe_denominators`` is the
        block's per-paper topic mass with zeros replaced by 1; callers
        zero out zero-mass columns themselves.
        """
        contributions = self.topic_contribution(
            reviewer_matrix[:, None, :], paper_block[None, :, :]
        )
        return contributions.sum(axis=2) / safe_denominators[None, :]

    def gain_vector(
        self,
        group_vector: np.ndarray,
        reviewer_matrix: np.ndarray,
        paper_vector: np.ndarray,
    ) -> np.ndarray:
        """Marginal gain of each reviewer against one paper, vectorised.

        Parameters
        ----------
        group_vector:
            ``(T,)`` aggregated vector of the paper's current group (the
            zero vector for an empty group).
        reviewer_matrix:
            ``(R, T)`` matrix of candidate reviewer vectors.
        paper_vector:
            ``(T,)`` paper vector.

        Returns
        -------
        numpy.ndarray
            ``(R,)`` array of marginal gains.
        """
        group_vector = np.asarray(group_vector, dtype=np.float64)
        reviewer_matrix = np.asarray(reviewer_matrix, dtype=np.float64)
        paper_vector = np.asarray(paper_vector, dtype=np.float64)
        denominator = float(paper_vector.sum())
        if denominator <= 0.0:
            return np.zeros(reviewer_matrix.shape[0], dtype=np.float64)
        current = float(self.topic_contribution(group_vector, paper_vector).sum())
        extended = np.maximum(group_vector[None, :], reviewer_matrix)
        numerators = self.topic_contribution(extended, paper_vector[None, :]).sum(axis=1)
        return (numerators - current) / denominator

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class WeightedCoverage(ScoringFunction):
    """The paper's default weighted coverage ``sum_t min(r[t], p[t])``."""

    name = "weighted_coverage"

    def topic_contribution(self, reviewer: np.ndarray, paper: np.ndarray) -> np.ndarray:
        return np.minimum(reviewer, paper)


class ReviewerCoverage(ScoringFunction):
    """Winner-takes-all reviewer coverage: ``r[t]`` where ``r[t] >= p[t]``.

    Prefers reviewers with very strong expertise on some of the paper's
    topics; recommended by the paper only when reviewer expertise
    information is highly trusted.
    """

    name = "reviewer_coverage"

    def topic_contribution(self, reviewer: np.ndarray, paper: np.ndarray) -> np.ndarray:
        reviewer, paper = np.broadcast_arrays(reviewer, paper)
        return np.where(reviewer >= paper, reviewer, 0.0)


class PaperCoverage(ScoringFunction):
    """Winner-takes-all paper coverage: ``p[t]`` where ``r[t] >= p[t]``.

    Counts a topic only when the reviewer can *completely* cover it.
    """

    name = "paper_coverage"

    def topic_contribution(self, reviewer: np.ndarray, paper: np.ndarray) -> np.ndarray:
        reviewer, paper = np.broadcast_arrays(reviewer, paper)
        return np.where(reviewer >= paper, paper, 0.0)


class DotProduct(ScoringFunction):
    """Classic vector-space similarity ``sum_t r[t] * p[t]``."""

    name = "dot_product"

    def topic_contribution(self, reviewer: np.ndarray, paper: np.ndarray) -> np.ndarray:
        return np.asarray(reviewer, dtype=np.float64) * np.asarray(paper, dtype=np.float64)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[ScoringFunction]] = {}


def register_scoring_function(cls: type[ScoringFunction], *aliases: str) -> type[ScoringFunction]:
    """Register a scoring function class under its name and extra aliases."""
    names = {cls.name, *aliases}
    for name in names:
        _REGISTRY[name.lower()] = cls
    return cls


register_scoring_function(WeightedCoverage, "c", "coverage", "default")
register_scoring_function(ReviewerCoverage, "cr")
register_scoring_function(PaperCoverage, "cp")
register_scoring_function(DotProduct, "cd", "dot")


def get_scoring_function(name: str | ScoringFunction | None = None) -> ScoringFunction:
    """Look up a scoring function by name.

    Passing ``None`` returns the paper's default (weighted coverage);
    passing an instance returns it unchanged, which lets every solver accept
    either a name or a ready-made object.
    """
    if name is None:
        return WeightedCoverage()
    if isinstance(name, ScoringFunction):
        return name
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise UnknownScoringFunctionError(
            f"unknown scoring function {name!r}; "
            f"available: {sorted(set(_REGISTRY))}"
        ) from None


def available_scoring_functions() -> list[str]:
    """Canonical names of all registered scoring functions."""
    return sorted({cls.name for cls in _REGISTRY.values()})


# ----------------------------------------------------------------------
# Convenience module-level functions (the common case: weighted coverage)
# ----------------------------------------------------------------------
_DEFAULT = WeightedCoverage()


def weighted_coverage(reviewer: TopicVector, paper: TopicVector) -> float:
    """Weighted coverage of a single reviewer vector over a paper vector.

    The running example of the paper (reviewer ``r1`` against paper ``p``
    in Figure 5):

    >>> round(weighted_coverage([0.15, 0.75, 0.1], [0.35, 0.45, 0.2]), 2)
    0.7
    """
    return _DEFAULT.score(reviewer, paper)


def group_coverage(group_vectors: list[TopicVector] | TopicVector, paper: TopicVector) -> float:
    """Weighted coverage of a reviewer group over a paper (Definitions 1+2)."""
    return _DEFAULT.group_score(group_vectors, paper)


def marginal_gain(
    group_vector: TopicVector | None, reviewer: TopicVector, paper: TopicVector
) -> float:
    """Marginal weighted-coverage gain of adding a reviewer to a group."""
    return _DEFAULT.marginal_gain(group_vector, reviewer, paper)
