"""Index-space compilation of a :class:`~repro.core.problem.WGRAPProblem`.

The object layer of :mod:`repro.core.problem` is the right API for
building, validating and mutating instances, but it is the wrong layer to
run a solver's inner loop on: scoring one candidate move through
``problem.paper_score`` costs two string-keyed dict lookups, a
``TopicVector`` allocation and a fresh fancy-index ``max`` — per call.
Multiplied by the ``R x P`` candidate space of the CRA solvers, the object
layer dominates the runtime long before the arithmetic does.

:class:`DenseProblem` is the compiled counterpart, in the spirit of
incremental view maintenance: the *static* structure of the instance
(topic matrices, the conflict/feasibility relation, constraint bounds,
paper topic masses) is materialised once into contiguous arrays, and every
solver step is then answered by a vectorised kernel over integer indices —
marginal gains of all reviewers for one paper in a single broadcast, batch
stage-gain matrices, batch scoring of every replace/exchange candidate.

All kernels are **exactly result-preserving**: they perform the same
elementwise operations and the same reductions (in the same order) as the
object-path methods they replace, so gains and scores are bitwise-equal to
``problem.paper_score`` / ``ScoringFunction.gain_vector`` — a property the
solvers rely on and ``tests/test_dense_kernels.py`` pins to 0 ulp.

Obtain the view through :meth:`WGRAPProblem.dense_view
<repro.core.problem.WGRAPProblem.dense_view>`, which caches it on the
problem so every solver, the assignment engine and the worker pool share
one compilation per instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.assignment import Assignment

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.core.problem import WGRAPProblem
    from repro.parallel.config import ParallelConfig

__all__ = ["DenseProblem"]


class DenseProblem:
    """A read-only, index-space view of one :class:`WGRAPProblem`.

    Attributes
    ----------
    problem:
        The compiled problem (kept for id lookups and scoring access).
    reviewer_matrix, paper_matrix:
        Contiguous ``(R, T)`` / ``(P, T)`` float64 topic matrices.
    feasible:
        ``(R, P)`` boolean mask, ``True`` where the pair is *not* a
        conflict of interest — the compiled form of
        :meth:`WGRAPProblem.is_feasible_pair`.
    paper_totals, safe_totals:
        ``(P,)`` per-paper topic masses (the scoring denominators);
        ``safe_totals`` replaces zeros by 1 so kernels can divide blindly
        and zero out the zero-mass papers afterwards.
    reviewer_pos, paper_pos:
        ``id -> index`` dicts (one dict lookup instead of a method call).
    """

    __slots__ = (
        "problem",
        "num_reviewers",
        "num_papers",
        "num_topics",
        "group_size",
        "reviewer_workload",
        "stage_workload",
        "reviewer_matrix",
        "paper_matrix",
        "feasible",
        "paper_totals",
        "safe_totals",
        "zero_mass",
        "reviewer_pos",
        "paper_pos",
        "versions",
        "view_stats",
        "_id_rank",
        "_empty_stage_exact",
    )

    def __init__(self, problem: "WGRAPProblem") -> None:
        self.problem = problem
        #: shared maintenance counters (see :class:`repro.core.delta.ViewStats`);
        #: a full compile through this constructor is a "recompile", the
        #: delta constructors of :mod:`repro.core.delta` bypass it.
        self.view_stats = problem.view_stats
        self.view_stats.recompiles += 1
        self.num_reviewers = problem.num_reviewers
        self.num_papers = problem.num_papers
        self.num_topics = problem.num_topics
        self.group_size = problem.group_size
        self.reviewer_workload = problem.reviewer_workload
        self.stage_workload = problem.stage_workload

        self.reviewer_matrix = np.ascontiguousarray(problem.reviewer_matrix)
        self.paper_matrix = np.ascontiguousarray(problem.paper_matrix)
        self.paper_totals = self.paper_matrix.sum(axis=1)
        self.zero_mass = self.paper_totals <= 0.0
        self.safe_totals = np.where(self.zero_mass, 1.0, self.paper_totals)

        self.reviewer_pos = {rid: i for i, rid in enumerate(problem.reviewer_ids)}
        self.paper_pos = {pid: j for j, pid in enumerate(problem.paper_ids)}

        feasible = np.ones((self.num_reviewers, self.num_papers), dtype=bool)
        conflicts = problem.conflicts
        #: the problem versions this view reflects; dense_view() keys its
        #: maintenance on them (conflict moves -> in-place mask patch,
        #: paper/reviewer moves -> recompile, though those cannot happen on
        #: one immutable instance through the public API).
        self.versions = problem.versions
        if conflicts:
            for paper_idx, paper_id in enumerate(problem.paper_ids):
                for reviewer_id in conflicts.reviewers_conflicting_with(paper_id):
                    row = self.reviewer_pos.get(reviewer_id)
                    if row is not None:
                        feasible[row, paper_idx] = False
        feasible.setflags(write=False)
        self.feasible = feasible
        self._id_rank: np.ndarray | None = None
        self._empty_stage_exact: bool | None = None

    @property
    def conflict_version(self) -> int:
        """The conflict-set version the feasibility mask currently reflects."""
        return self.versions.conflicts

    # ------------------------------------------------------------------
    # Id/index helpers
    # ------------------------------------------------------------------
    @property
    def id_rank(self) -> np.ndarray:
        """``(R,)`` lexicographic rank of every reviewer's id.

        Solvers that iterate group members "in sorted id order" (the
        object-path convention) sort index lists by this rank so index
        space reproduces the exact same visit order even when ids do not
        sort like their positions.
        """
        if self._id_rank is None:
            ids = self.problem.reviewer_ids
            rank = np.empty(len(ids), dtype=np.int64)
            for position, index in enumerate(sorted(range(len(ids)), key=ids.__getitem__)):
                rank[index] = position
            self._id_rank = rank
        return self._id_rank

    def sorted_member_rows(self, assignment: Assignment, paper_id: str) -> list[int]:
        """Reviewer rows of a paper's group, in sorted-id order."""
        pos = self.reviewer_pos
        rows = [pos[rid] for rid in assignment.reviewers_of(paper_id)]
        rank = self.id_rank
        rows.sort(key=rank.__getitem__)
        return rows

    def member_rows(self, assignment: Assignment) -> list[list[int]]:
        """Per-paper reviewer rows (paper order; member order unspecified)."""
        pos = self.reviewer_pos
        return [
            [pos[rid] for rid in assignment.reviewers_of(paper_id)]
            for paper_id in self.problem.paper_ids
        ]

    def loads(self, assignment: Assignment) -> np.ndarray:
        """``(R,)`` current paper count of every reviewer."""
        loads = np.zeros(self.num_reviewers, dtype=np.int64)
        pos = self.reviewer_pos
        for reviewer_id in assignment.reviewers():
            loads[pos[reviewer_id]] = assignment.load(reviewer_id)
        return loads

    def pair_scores(self, parallel: "ParallelConfig | None" = None) -> np.ndarray:
        """The cached ``(R, P)`` single-reviewer score matrix.

        Delegates to :meth:`WGRAPProblem.warm_pair_scores
        <repro.core.problem.WGRAPProblem.warm_pair_scores>` so the matrix
        is computed once per problem instance no matter how many solvers,
        engine requests or dense kernels read it.
        """
        return self.problem.warm_pair_scores(parallel)

    # ------------------------------------------------------------------
    # Group vectors
    # ------------------------------------------------------------------
    def group_vectors(
        self, assignment: Assignment, member_rows: list[list[int]] | None = None
    ) -> np.ndarray:
        """``(P, T)`` aggregated group vector of every paper (writable copy).

        Equals :meth:`WGRAPProblem.group_vector` row for row (the per-topic
        ``max`` is exact whatever the member order).
        """
        if member_rows is None:
            member_rows = self.member_rows(assignment)
        vectors = np.zeros((self.num_papers, self.num_topics), dtype=np.float64)
        reviewer_matrix = self.reviewer_matrix
        for paper_idx, rows in enumerate(member_rows):
            if rows:
                np.max(reviewer_matrix[rows], axis=0, out=vectors[paper_idx])
        return vectors

    # ------------------------------------------------------------------
    # Scoring kernels (bitwise-equal to the object path)
    # ------------------------------------------------------------------
    def paper_score(self, group_vector: np.ndarray, paper_idx: int) -> float:
        """Coverage of one paper by a group vector (= ``problem.paper_score``)."""
        total = self.paper_totals[paper_idx]
        if total <= 0.0:
            return 0.0
        scoring = self.problem.scoring
        numerator = scoring.topic_contribution(
            group_vector, self.paper_matrix[paper_idx]
        ).sum()
        return float(numerator) / float(total)

    def paper_scores(self, group_vectors: np.ndarray) -> np.ndarray:
        """``(P,)`` coverage of every paper by its group vector."""
        scoring = self.problem.scoring
        numerators = scoring.topic_contribution(group_vectors, self.paper_matrix).sum(axis=1)
        scores = numerators / self.safe_totals
        scores[self.zero_mass] = 0.0
        return scores

    def assignment_score(self, assignment: Assignment) -> float:
        """Total coverage ``c(A)``, bitwise-equal to ``problem.assignment_score``.

        The object path sums per-paper scores left to right in paper order
        with Python ``sum``; this method reproduces exactly that, only the
        per-paper scores come from one batched kernel.
        """
        return float(sum(self.paper_scores(self.group_vectors(assignment)).tolist()))

    def gains_for_paper(self, group_vector: np.ndarray, paper_idx: int) -> np.ndarray:
        """``(R,)`` marginal gain of every reviewer for one paper."""
        return self.problem.scoring.gain_vector(
            group_vector, self.reviewer_matrix, self.paper_matrix[paper_idx]
        )

    def gains_for_rows(
        self, group_vector: np.ndarray, paper_idx: int, rows: np.ndarray
    ) -> np.ndarray:
        """Marginal gains of a *subset* of reviewers for one paper.

        Entry ``i`` is bitwise-equal to ``gains_for_paper(...)[rows[i]]``:
        the kernel performs the same elementwise operations and the same
        per-row topic reduction as :meth:`ScoringFunction.gain_vector
        <repro.core.scoring.ScoringFunction.gain_vector>`, only gathered to
        the requested rows — the evaluation kernel behind the exact pruned
        candidate generator of :mod:`repro.core.delta`.
        """
        paper_vector = self.paper_matrix[paper_idx]
        denominator = float(paper_vector.sum())
        if denominator <= 0.0:
            return np.zeros(len(rows), dtype=np.float64)
        scoring = self.problem.scoring
        current = float(scoring.topic_contribution(group_vector, paper_vector).sum())
        extended = np.maximum(group_vector[None, :], self.reviewer_matrix[rows])
        numerators = scoring.topic_contribution(extended, paper_vector[None, :]).sum(axis=1)
        return (numerators - current) / denominator

    def gain_matrix(
        self,
        group_vectors: np.ndarray,
        paper_indices: np.ndarray | None = None,
        paper_block: int = 64,
    ) -> np.ndarray:
        """Marginal gains of every reviewer for many papers in one kernel.

        Parameters
        ----------
        group_vectors:
            ``(K, T)`` current group vectors, aligned with ``paper_indices``
            (or with all papers when ``paper_indices`` is ``None``).
        paper_indices:
            Optional ``(K,)`` paper rows to evaluate; defaults to every
            paper in order.
        paper_block:
            Papers per block, bounding the ``(block, R, T)`` broadcast
            intermediate to cache size (same blocking idea as
            :func:`repro.parallel.sharding.blocked_score_matrix`).

        Returns
        -------
        numpy.ndarray
            ``(K, R)`` gains, row ``k`` bitwise-equal to
            ``gains_for_paper(group_vectors[k], paper_indices[k])``.
        """
        scoring = self.problem.scoring
        reviewer_matrix = self.reviewer_matrix
        if paper_indices is None:
            papers = self.paper_matrix
            safe = self.safe_totals
            zero = self.zero_mass
        else:
            papers = self.paper_matrix[paper_indices]
            safe = self.safe_totals[paper_indices]
            zero = self.zero_mass[paper_indices]
        count = papers.shape[0]
        gains = np.empty((count, self.num_reviewers), dtype=np.float64)
        for start in range(0, count, paper_block):
            stop = min(start + paper_block, count)
            block_groups = group_vectors[start:stop]
            block_papers = papers[start:stop]
            current = scoring.topic_contribution(block_groups, block_papers).sum(axis=1)
            extended = np.maximum(
                block_groups[:, None, :], reviewer_matrix[None, :, :]
            )
            numerators = scoring.topic_contribution(
                extended, block_papers[:, None, :]
            ).sum(axis=2)
            gains[start:stop] = (numerators - current[:, None]) / safe[start:stop, None]
        gains[zero] = 0.0
        return gains

    def candidate_scores(self, group_vector: np.ndarray, paper_idx: int) -> np.ndarray:
        """``(R,)`` score of ``group + {candidate}`` for every candidate.

        Entry ``c`` is bitwise-equal to ``problem.paper_score`` of the
        group extended with reviewer ``c`` — the kernel behind batch
        replace-move evaluation.
        """
        total = self.paper_totals[paper_idx]
        if total <= 0.0:
            return np.zeros(self.num_reviewers, dtype=np.float64)
        scoring = self.problem.scoring
        extended = np.maximum(group_vector[None, :], self.reviewer_matrix)
        numerators = scoring.topic_contribution(
            extended, self.paper_matrix[paper_idx][None, :]
        ).sum(axis=1)
        return numerators / float(total)

    def candidate_scores_for_rows(
        self, group_vector: np.ndarray, paper_idx: int, rows: np.ndarray
    ) -> np.ndarray:
        """:meth:`candidate_scores` restricted to a subset of candidates.

        Entry ``i`` is bitwise-equal to ``candidate_scores(...)[rows[i]]``
        (same elementwise operations, same per-row reduction) — used by the
        pruned replace-move search of the local-search refiner to score
        only the candidates whose admissible upper bound survives.
        """
        total = self.paper_totals[paper_idx]
        if total <= 0.0:
            return np.zeros(len(rows), dtype=np.float64)
        scoring = self.problem.scoring
        extended = np.maximum(group_vector[None, :], self.reviewer_matrix[rows])
        numerators = scoring.topic_contribution(
            extended, self.paper_matrix[paper_idx][None, :]
        ).sum(axis=1)
        return numerators / float(total)

    def scores_with_reviewer(
        self,
        group_vectors: np.ndarray,
        paper_indices: np.ndarray,
        reviewer_idx: int,
    ) -> np.ndarray:
        """Score of ``group_vectors[k] + {reviewer}`` against paper ``k``.

        The exchange-move kernel: one call scores a fixed reviewer joining
        many different groups (one per slot) at once.
        """
        scoring = self.problem.scoring
        extended = np.maximum(group_vectors, self.reviewer_matrix[reviewer_idx][None, :])
        numerators = scoring.topic_contribution(
            extended, self.paper_matrix[paper_indices]
        ).sum(axis=1)
        scores = numerators / self.safe_totals[paper_indices]
        scores[self.zero_mass[paper_indices]] = 0.0
        return scores

    # ------------------------------------------------------------------
    # Stage inputs (SDGA stages, SRA refills, repair rounds)
    # ------------------------------------------------------------------
    def stage_inputs(
        self, assignment: Assignment, stage_capped: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gain matrix, forbidden mask and capacities for one stage step.

        The compiled equivalent of the per-pair Python loops the stage
        solvers used to run: gains come from :meth:`gain_matrix`, the
        forbidden mask is the conflict mask plus each paper's current
        members, and capacities are the remaining global workloads —
        optionally clipped to the SDGA per-stage workload
        (``stage_capped``), falling back to the global remainder when the
        clip leaves too little capacity for one reviewer per paper.

        When the assignment is still empty (the first SDGA stage — 1/delta_p
        of every solve), the marginal gain of a reviewer equals their pair
        score exactly, so the gains are served from the shared (and
        delta-maintained) pair-score matrix instead of re-running the gain
        kernel.  The shortcut is taken only when it is provably bitwise-equal
        (non-negative reviewer vectors, zero contribution of the empty
        group — see :meth:`_empty_stage_gains`).
        """
        member_rows = self.member_rows(assignment)
        if not any(member_rows):
            gains = self._empty_stage_gains()
        else:
            gains = self.gain_matrix(self.group_vectors(assignment, member_rows))
        forbidden = np.array(~self.feasible.T)
        loads = np.zeros(self.num_reviewers, dtype=np.int64)
        for paper_idx, rows in enumerate(member_rows):
            if rows:
                forbidden[paper_idx, rows] = True
                loads[rows] += 1
        remaining = np.maximum(self.reviewer_workload - loads, 0)
        if stage_capped:
            capacities = np.minimum(self.stage_workload, remaining)
            if int(capacities.sum()) < self.num_papers:
                # The per-stage cap can leave too little headroom for the
                # final stage in the non-integral case; the global workload
                # is the binding constraint there (Section 4.3.2).
                capacities = remaining
        else:
            capacities = remaining
        return gains, forbidden, capacities

    def _empty_stage_gains(self) -> np.ndarray:
        """``(P, R)`` gains of the empty-group stage, from the pair scores.

        With an empty group, ``gain_matrix`` evaluates
        ``(f(max(0, r), p).sum() - f(0, p).sum()) / total`` per pair.  When
        every reviewer value is non-negative (``max(0, r) == r``) and the
        empty group contributes exactly ``0.0`` to every paper, that is the
        pair score cell for cell — same elementwise kernel, same topic
        reduction, a subtraction of exact ``0.0`` — so the shared matrix
        can be transposed into place without any scoring work.  Both
        preconditions are checked once per view; scoring functions that
        violate them (none of the registered ones do) fall back to the
        gain kernel.
        """
        if self._empty_stage_exact is None:
            scoring = self.problem.scoring
            zero_group = np.zeros((1, self.num_topics), dtype=np.float64)
            empty_contribution = scoring.topic_contribution(
                zero_group, self.paper_matrix
            ).sum(axis=1)
            self._empty_stage_exact = bool(
                np.all(empty_contribution == 0.0)
                and (self.num_reviewers == 0 or float(self.reviewer_matrix.min()) >= 0.0)
            )
        if not self._empty_stage_exact:
            zero_vectors = np.zeros((self.num_papers, self.num_topics), dtype=np.float64)
            return self.gain_matrix(zero_vectors)
        return np.ascontiguousarray(self.pair_scores().T)
