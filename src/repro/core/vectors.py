"""Topic vectors: the fundamental numeric object of WGRAP.

The paper (Section 2.1) models both reviewer expertise and paper content as
``T``-dimensional *topic vectors*.  :class:`TopicVector` is a small immutable
wrapper around a ``numpy`` array that provides the vector algebra the
algorithms need:

* element-wise minimum (used by the weighted-coverage score, Definition 1),
* element-wise maximum (used to aggregate a reviewer group, Definition 2),
* L1 normalisation (the paper normalises both reviewer and paper vectors),
* convenient constructors from dicts, lists and other vectors.

Keeping the wrapper immutable means vectors can be shared freely between
problem instances, assignments and solver internals without defensive
copies; all mutating-looking operations return new vectors.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Union

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError

__all__ = ["TopicVector", "as_topic_vector", "stack_vectors"]

VectorLike = Union["TopicVector", Sequence[float], np.ndarray, Mapping[int, float]]


class TopicVector:
    """An immutable, non-negative, fixed-length vector of topic weights.

    Parameters
    ----------
    values:
        Any sequence of floats, a numpy array, or a mapping from topic index
        to weight.  Mappings require ``num_topics`` to be given so missing
        topics default to zero.
    num_topics:
        Length of the vector; only required (and only honoured) when
        ``values`` is a mapping.

    Raises
    ------
    ConfigurationError
        If any weight is negative or not finite.
    """

    __slots__ = ("_values",)

    def __init__(self, values: VectorLike, num_topics: int | None = None) -> None:
        if isinstance(values, TopicVector):
            array = values._values
        elif isinstance(values, Mapping):
            if num_topics is None:
                raise ConfigurationError(
                    "num_topics is required when building a TopicVector from a mapping"
                )
            array = np.zeros(num_topics, dtype=np.float64)
            for index, weight in values.items():
                if not 0 <= int(index) < num_topics:
                    raise ConfigurationError(
                        f"topic index {index} out of range for {num_topics} topics"
                    )
                array[int(index)] = float(weight)
        else:
            array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise ConfigurationError(
                f"a topic vector must be one-dimensional, got shape {array.shape}"
            )
        if array.size == 0:
            raise ConfigurationError("a topic vector must have at least one topic")
        if not np.all(np.isfinite(array)):
            raise ConfigurationError("topic weights must be finite numbers")
        if np.any(array < 0):
            raise ConfigurationError("topic weights must be non-negative")
        self._values = np.array(array, dtype=np.float64, copy=True)
        self._values.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The underlying read-only numpy array."""
        return self._values

    @property
    def num_topics(self) -> int:
        """The number of topics ``T``."""
        return int(self._values.size)

    def __len__(self) -> int:
        return self.num_topics

    def __getitem__(self, topic: int) -> float:
        return float(self._values[topic])

    def __iter__(self):
        return iter(float(value) for value in self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopicVector):
            return NotImplemented
        return self._values.shape == other._values.shape and bool(
            np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash(self._values.tobytes())

    def __repr__(self) -> str:
        weights = ", ".join(f"{value:.3f}" for value in self._values)
        return f"TopicVector([{weights}])"

    # ------------------------------------------------------------------
    # Algebra used by the WGRAP scoring functions
    # ------------------------------------------------------------------
    def total(self) -> float:
        """Sum of all topic weights (the denominator of Definition 1)."""
        return float(self._values.sum())

    def is_normalized(self, tolerance: float = 1e-9) -> bool:
        """Whether the weights sum to one within ``tolerance``."""
        return abs(self.total() - 1.0) <= tolerance

    def normalized(self) -> "TopicVector":
        """Return an L1-normalised copy of this vector.

        A zero vector is returned unchanged, since there is no meaningful
        normalisation for a reviewer or paper with no topic mass.
        """
        total = self.total()
        if total <= 0.0:
            return self
        return TopicVector(self._values / total)

    def minimum(self, other: "TopicVector") -> "TopicVector":
        """Element-wise minimum with ``other`` (coverage of one by the other)."""
        self._check_same_dimension(other)
        return TopicVector(np.minimum(self._values, other._values))

    def maximum(self, other: "TopicVector") -> "TopicVector":
        """Element-wise maximum with ``other`` (group aggregation)."""
        self._check_same_dimension(other)
        return TopicVector(np.maximum(self._values, other._values))

    def dot(self, other: "TopicVector") -> float:
        """Inner product with ``other`` (the ``cD`` scoring function)."""
        self._check_same_dimension(other)
        return float(np.dot(self._values, other._values))

    def scaled(self, factor: float) -> "TopicVector":
        """Return this vector multiplied by a non-negative scalar.

        Used by the h-index expertise scaling of Appendix C (Equation 15).
        """
        if factor < 0:
            raise ConfigurationError("scaling factor must be non-negative")
        return TopicVector(self._values * float(factor))

    def top_topics(self, count: int) -> list[int]:
        """Indices of the ``count`` highest-weight topics, heaviest first."""
        if count <= 0:
            return []
        count = min(count, self.num_topics)
        order = np.argsort(-self._values, kind="stable")
        return [int(index) for index in order[:count]]

    def dominates(self, other: "TopicVector") -> bool:
        """Whether every weight of this vector is >= the matching weight."""
        self._check_same_dimension(other)
        return bool(np.all(self._values >= other._values))

    def to_dict(self, include_zeros: bool = False) -> dict[int, float]:
        """A ``{topic index: weight}`` mapping, omitting zeros by default."""
        items = enumerate(self._values)
        if include_zeros:
            return {index: float(value) for index, value in items}
        return {index: float(value) for index, value in items if value > 0.0}

    def to_list(self) -> list[float]:
        """The weights as a plain Python list."""
        return [float(value) for value in self._values]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, num_topics: int) -> "TopicVector":
        """The all-zero vector of length ``num_topics``."""
        if num_topics <= 0:
            raise ConfigurationError("num_topics must be positive")
        return cls(np.zeros(num_topics, dtype=np.float64))

    @classmethod
    def uniform(cls, num_topics: int) -> "TopicVector":
        """The uniform distribution over ``num_topics`` topics."""
        if num_topics <= 0:
            raise ConfigurationError("num_topics must be positive")
        return cls(np.full(num_topics, 1.0 / num_topics, dtype=np.float64))

    @classmethod
    def single_topic(cls, topic: int, num_topics: int, weight: float = 1.0) -> "TopicVector":
        """A vector with all mass ``weight`` on a single topic."""
        return cls({topic: weight}, num_topics=num_topics)

    @classmethod
    def group_maximum(cls, vectors: Iterable["TopicVector"]) -> "TopicVector":
        """Per-topic maximum of several vectors (Definition 2).

        Raises
        ------
        ConfigurationError
            If no vectors are given.
        """
        vector_list = list(vectors)
        if not vector_list:
            raise ConfigurationError("group_maximum requires at least one vector")
        stacked = stack_vectors(vector_list)
        return cls(stacked.max(axis=0))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_same_dimension(self, other: "TopicVector") -> None:
        if self.num_topics != other.num_topics:
            raise DimensionMismatchError(
                f"topic vectors have different lengths: "
                f"{self.num_topics} vs {other.num_topics}"
            )


def as_topic_vector(values: VectorLike, num_topics: int | None = None) -> TopicVector:
    """Coerce ``values`` into a :class:`TopicVector` (no copy if already one)."""
    if isinstance(values, TopicVector):
        return values
    return TopicVector(values, num_topics=num_topics)


def stack_vectors(vectors: Sequence[TopicVector]) -> np.ndarray:
    """Stack vectors into a dense ``(len(vectors), T)`` matrix.

    All vectors must have the same dimensionality.  Solvers use this to move
    from the object model into fast vectorised numpy computations.
    """
    if not vectors:
        raise ConfigurationError("cannot stack an empty list of vectors")
    num_topics = vectors[0].num_topics
    for vector in vectors:
        if vector.num_topics != num_topics:
            raise DimensionMismatchError(
                "all vectors must have the same number of topics to be stacked"
            )
    return np.vstack([vector.values for vector in vectors])
