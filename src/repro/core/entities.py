"""Domain entities: reviewers, papers and reviewer groups.

These classes are intentionally lightweight.  They bind an identifier and a
bit of human-readable metadata to a :class:`~repro.core.vectors.TopicVector`;
all of the optimisation machinery works on the vectors and on integer
indices managed by :class:`~repro.core.problem.WGRAPProblem`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.vectors import TopicVector, VectorLike, as_topic_vector
from repro.exceptions import ConfigurationError

__all__ = ["Reviewer", "Paper", "ReviewerGroup"]


@dataclass(frozen=True)
class Reviewer:
    """A candidate reviewer.

    Attributes
    ----------
    id:
        Unique identifier (e.g. a DBLP author key or an e-mail address).
    vector:
        Topic vector describing the reviewer's expertise.
    name:
        Human readable name; defaults to the identifier.
    h_index:
        Optional bibliometric indicator used by the expertise-scaling
        experiment of Appendix C (Equation 15).
    metadata:
        Arbitrary extra fields (affiliation, seniority, ...).  Never
        interpreted by the library.
    """

    id: str
    vector: TopicVector
    name: str = ""
    h_index: int | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.id:
            raise ConfigurationError("a reviewer must have a non-empty id")
        object.__setattr__(self, "vector", as_topic_vector(self.vector))
        if not self.name:
            object.__setattr__(self, "name", self.id)
        if self.h_index is not None and self.h_index < 0:
            raise ConfigurationError("h_index must be non-negative")

    @property
    def num_topics(self) -> int:
        """Number of topics in the reviewer's expertise vector."""
        return self.vector.num_topics

    def expertise_on(self, topic: int) -> float:
        """The reviewer's weight on a single topic."""
        return self.vector[topic]

    def with_vector(self, vector: VectorLike) -> "Reviewer":
        """A copy of this reviewer with a replaced expertise vector."""
        return Reviewer(
            id=self.id,
            vector=as_topic_vector(vector),
            name=self.name,
            h_index=self.h_index,
            metadata=self.metadata,
        )

    @classmethod
    def from_weights(
        cls,
        reviewer_id: str,
        weights: VectorLike,
        num_topics: int | None = None,
        **kwargs: Any,
    ) -> "Reviewer":
        """Build a reviewer directly from raw topic weights."""
        return cls(id=reviewer_id, vector=as_topic_vector(weights, num_topics), **kwargs)


@dataclass(frozen=True)
class Paper:
    """A submission that needs to be reviewed.

    Attributes
    ----------
    id:
        Unique identifier (e.g. a submission number).
    vector:
        Topic vector describing the paper's content.
    title:
        Human readable title; defaults to the identifier.
    abstract:
        Optional raw abstract text (kept for topic-extraction pipelines and
        case-study reports; never required by the solvers).
    metadata:
        Arbitrary extra fields (venue, year, authors, keywords, ...).
    """

    id: str
    vector: TopicVector
    title: str = ""
    abstract: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.id:
            raise ConfigurationError("a paper must have a non-empty id")
        object.__setattr__(self, "vector", as_topic_vector(self.vector))
        if not self.title:
            object.__setattr__(self, "title", self.id)

    @property
    def num_topics(self) -> int:
        """Number of topics in the paper's content vector."""
        return self.vector.num_topics

    def relevance_to(self, topic: int) -> float:
        """The paper's weight on a single topic."""
        return self.vector[topic]

    def with_vector(self, vector: VectorLike) -> "Paper":
        """A copy of this paper with a replaced content vector."""
        return Paper(
            id=self.id,
            vector=as_topic_vector(vector),
            title=self.title,
            abstract=self.abstract,
            metadata=self.metadata,
        )

    @classmethod
    def from_weights(
        cls,
        paper_id: str,
        weights: VectorLike,
        num_topics: int | None = None,
        **kwargs: Any,
    ) -> "Paper":
        """Build a paper directly from raw topic weights."""
        return cls(id=paper_id, vector=as_topic_vector(weights, num_topics), **kwargs)


class ReviewerGroup:
    """An (ordered, duplicate-free) set of reviewers assigned to one paper.

    The group's *expertise vector* is the per-topic maximum over its members
    (Definition 2 of the paper): the most expert member on a topic dominates
    the group's confidence on that topic.
    """

    __slots__ = ("_reviewers", "_by_id")

    def __init__(self, reviewers: Iterable[Reviewer] = ()) -> None:
        self._reviewers: list[Reviewer] = []
        self._by_id: dict[str, Reviewer] = {}
        for reviewer in reviewers:
            self.add(reviewer)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, reviewer: Reviewer) -> None:
        """Add a reviewer; adding an already-present reviewer is a no-op."""
        if reviewer.id in self._by_id:
            return
        if self._reviewers and reviewer.num_topics != self._reviewers[0].num_topics:
            raise ConfigurationError(
                "all reviewers in a group must share the same number of topics"
            )
        self._reviewers.append(reviewer)
        self._by_id[reviewer.id] = reviewer

    def remove(self, reviewer_id: str) -> Reviewer:
        """Remove and return a member by id.

        Raises
        ------
        KeyError
            If the reviewer is not in the group.
        """
        reviewer = self._by_id.pop(reviewer_id)
        self._reviewers = [member for member in self._reviewers if member.id != reviewer_id]
        return reviewer

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._reviewers)

    def __iter__(self) -> Iterator[Reviewer]:
        return iter(self._reviewers)

    def __contains__(self, reviewer: Reviewer | str) -> bool:
        reviewer_id = reviewer.id if isinstance(reviewer, Reviewer) else reviewer
        return reviewer_id in self._by_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReviewerGroup):
            return NotImplemented
        return self.ids() == other.ids()

    def __repr__(self) -> str:
        members = ", ".join(sorted(self._by_id))
        return f"ReviewerGroup({{{members}}})"

    def ids(self) -> frozenset[str]:
        """The set of member identifiers."""
        return frozenset(self._by_id)

    def members(self) -> tuple[Reviewer, ...]:
        """The members in insertion order."""
        return tuple(self._reviewers)

    @property
    def vector(self) -> TopicVector:
        """The group expertise vector: the per-topic maximum over members.

        Raises
        ------
        ConfigurationError
            If the group is empty (an empty group has no dimensionality).
        """
        if not self._reviewers:
            raise ConfigurationError("an empty reviewer group has no expertise vector")
        return TopicVector.group_maximum(reviewer.vector for reviewer in self._reviewers)

    def vector_or_zero(self, num_topics: int) -> TopicVector:
        """Like :attr:`vector`, but an empty group yields the zero vector."""
        if not self._reviewers:
            return TopicVector.zeros(num_topics)
        return self.vector

    def union(self, other: "ReviewerGroup") -> "ReviewerGroup":
        """A new group containing the members of both groups."""
        merged = ReviewerGroup(self._reviewers)
        for reviewer in other:
            merged.add(reviewer)
        return merged

    def with_member(self, reviewer: Reviewer) -> "ReviewerGroup":
        """A new group equal to this one plus ``reviewer``."""
        extended = ReviewerGroup(self._reviewers)
        extended.add(reviewer)
        return extended

    def without_member(self, reviewer_id: str) -> "ReviewerGroup":
        """A new group equal to this one minus the reviewer with ``reviewer_id``."""
        return ReviewerGroup(
            reviewer for reviewer in self._reviewers if reviewer.id != reviewer_id
        )
