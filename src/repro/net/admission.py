"""Admission control for the network front end.

A server that accepts every request it can parse will, under overload,
convert latency into an unbounded backlog: every queued request makes
every later one slower, until clients time out on work the server will
still dutifully perform.  The admission controller keeps the backlog
*bounded* instead — a request that would push a tenant (or the process)
past its pending-depth bound is rejected **immediately** with the
structured ``overloaded`` error type, so clients get a cheap, explicit
back-off signal while the requests already admitted keep their latency.

The accounting is deliberately simple: one in-flight counter per tenant
plus one process-wide counter, both owned by the event loop thread
(admission decisions never cross threads; only the *completion* of a
request is reported back from wherever the response was produced, via
the loop).  ``drain()`` flips the controller into rejecting everything —
the graceful-shutdown path — without disturbing in-flight counts.
"""

from __future__ import annotations

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded pending-request depth, per tenant and per process.

    Parameters
    ----------
    max_pending:
        Maximum requests admitted-but-unanswered *per tenant*.
    max_total_pending:
        Process-wide bound across all tenants; defaults to
        ``4 * max_pending`` so a single hot tenant cannot starve the
        rest of the process by itself.
    """

    def __init__(self, max_pending: int = 256, max_total_pending: int | None = None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = max_pending
        self.max_total_pending = (
            max_total_pending if max_total_pending is not None else 4 * max_pending
        )
        if self.max_total_pending < max_pending:
            raise ValueError("max_total_pending must be at least max_pending")
        self._total = 0
        self._per_tenant: dict[str, int] = {}
        self._draining = False

    @property
    def total_pending(self) -> int:
        """Requests admitted and not yet answered, across all tenants."""
        return self._total

    @property
    def draining(self) -> bool:
        """Whether the controller rejects everything (graceful shutdown)."""
        return self._draining

    def pending(self, tenant_id: str) -> int:
        """In-flight depth of one tenant."""
        return self._per_tenant.get(tenant_id, 0)

    def drain(self) -> None:
        """Stop admitting; in-flight requests keep draining normally."""
        self._draining = True

    def try_admit(self, tenant_id: str) -> str | None:
        """Admit one request for ``tenant_id``, or explain the refusal.

        Returns ``None`` on admission (the caller *must* later call
        :meth:`release`), or a human-readable reason string when the
        request must be answered with ``error_type: "overloaded"``.
        """
        if self._draining:
            return "server is draining; no new requests are admitted"
        if self._total >= self.max_total_pending:
            return (
                f"server backlog is full ({self._total} pending, "
                f"bound {self.max_total_pending}); retry later"
            )
        depth = self._per_tenant.get(tenant_id, 0)
        if depth >= self.max_pending:
            return (
                f"tenant {tenant_id!r} backlog is full ({depth} pending, "
                f"bound {self.max_pending}); retry later"
            )
        self._per_tenant[tenant_id] = depth + 1
        self._total += 1
        return None

    def release(self, tenant_id: str) -> None:
        """Report one admitted request as answered."""
        depth = self._per_tenant.get(tenant_id, 0)
        if depth <= 1:
            self._per_tenant.pop(tenant_id, None)
        else:
            self._per_tenant[tenant_id] = depth - 1
        self._total = max(0, self._total - 1)

    def forget(self, tenant_id: str) -> None:
        """Drop a tenant's counter entirely (tenant eviction)."""
        depth = self._per_tenant.pop(tenant_id, None)
        if depth:
            self._total = max(0, self._total - depth)
