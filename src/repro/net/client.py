"""Asyncio JSON-lines client and the closed-loop load generator.

:class:`NetClient` is the minimal protocol client: one JSON object per
line out, one per line in, with pipelining left to the caller.  It backs
the test harness and the ``wgrap``-side tooling.

:class:`RetryingClient` wraps it with the fault-tolerant behaviour a
production caller needs against a crash-recovering server: seeded
exponential backoff + jitter on transport failures, automatic reconnect,
and an idempotency key (the wire ``seq`` field) attached to every
mutation so a retry that re-sends an *already-applied* mutation is
answered from the durable tenant's idempotency map instead of executing
twice.  Against a non-durable tenant retried mutations may re-apply —
exactly-once needs the server's ``--wal-dir``.

:func:`run_load` is the load harness behind
``benchmarks/bench_serve_load.py``: N closed-loop clients (each keeps
exactly one request in flight) hammering one server from one event loop,
with per-request latencies recorded and summarised as a
:class:`LoadReport`.  Closed-loop clients are the honest way to measure
a bounded-backlog server — each client's next request waits for its last
answer, so the offered load adapts to the service rate instead of
measuring the admission controller's rejection throughput.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import random
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.service.requests import MUTATION_KINDS

__all__ = ["LoadReport", "NetClient", "RetryPolicy", "RetryingClient", "run_load"]


class NetClient:
    """One JSON-lines connection to an :class:`AssignmentServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        attempts: int = 20,
        retry_delay: float = 0.05,
        limit: int = 1 << 20,
    ) -> "NetClient":
        """Connect, retrying briefly — absorbs accept-queue pressure when
        hundreds of clients dial in at once."""
        last: Exception | None = None
        for _ in range(max(1, attempts)):
            try:
                reader, writer = await asyncio.open_connection(host, port, limit=limit)
                return cls(reader, writer)
            except (ConnectionRefusedError, OSError) as exc:
                last = exc
                await asyncio.sleep(retry_delay)
        raise ConnectionError(f"could not connect to {host}:{port}: {last}")

    async def send(self, payload: dict[str, Any]) -> None:
        self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await self._writer.drain()

    async def recv(self) -> dict[str, Any]:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request and await its response (closed loop)."""
        await self.send(payload)
        return await self.recv()

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with jitter.

    Attempt ``k`` (0-based retry count) sleeps
    ``min(max_delay, base_delay * multiplier**k)`` spread by ``±jitter``
    (a fraction of the raw delay) from a :class:`random.Random` seeded
    with ``seed`` — deterministic backoff sequences for deterministic
    chaos tests.
    """

    attempts: int = 5
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: int | None = None
    #: also retry responses refused with ``error_type: "overloaded"``
    retry_overloaded: bool = False

    def delay(self, retry_index: int, rng: random.Random) -> float:
        raw = min(self.max_delay, self.base_delay * self.multiplier**retry_index)
        if self.jitter <= 0:
            return raw
        spread = raw * self.jitter
        return max(0.0, raw - spread + rng.random() * 2.0 * spread)


class RetryingClient:
    """A reconnecting, retrying, idempotency-keyed, failing-over client.

    Every mutation request (:data:`~repro.service.requests.MUTATION_KINDS`)
    gets a monotonically increasing ``seq`` idempotency key (unless the
    caller supplied one), chosen from ``idempotency_start`` — give each
    client stream a disjoint range.  Transport failures (lost connection,
    torn response) reconnect and re-send the *same* payload, same key, so
    a durable tenant applies the mutation exactly once no matter how many
    times the wire ate the answer.

    **Failover**: give ``endpoints`` an ordered ``(host, port)`` list —
    typically primary first, standby second.  A transport failure (or a
    connect failure) rotates to the next endpoint before retrying, and a
    structured ``error_type: "standby"`` refusal — an unpromoted standby
    declining engine traffic — is always retried with rotation, so a
    client stream rides out a primary crash + standby promotion with the
    same exactly-once guarantee the single-server retry path has.
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        *,
        endpoints: list[tuple[str, int]] | None = None,
        policy: RetryPolicy | None = None,
        idempotency_start: int = 1,
        connect_attempts: int | None = None,
    ) -> None:
        if endpoints is None:
            if host is None or port is None:
                raise ValueError(
                    "RetryingClient needs (host, port) or an endpoints list"
                )
            endpoints = [(host, int(port))]
        if not endpoints:
            raise ValueError("the endpoints list cannot be empty")
        self._endpoints = [(str(h), int(p)) for h, p in endpoints]
        self._active = 0
        self.policy = policy if policy is not None else RetryPolicy()
        # Against a single endpoint, patient connects ride out accept-queue
        # pressure; with alternatives, rotate to the next endpoint fast.
        if connect_attempts is None:
            connect_attempts = 20 if len(self._endpoints) == 1 else 5
        self._connect_attempts = max(1, int(connect_attempts))
        self._rng = random.Random(self.policy.seed)
        self._seq = itertools.count(max(1, idempotency_start))
        self._client: NetClient | None = None

    @property
    def host(self) -> str:
        return self._endpoints[self._active][0]

    @property
    def port(self) -> int:
        return self._endpoints[self._active][1]

    @property
    def endpoints(self) -> list[tuple[str, int]]:
        return list(self._endpoints)

    async def set_endpoints(self, endpoints: list[tuple[str, int]]) -> None:
        """Replace the failover list (e.g. after attaching a new standby).

        Drops the live connection so the next request dials the new
        first endpoint.
        """
        if not endpoints:
            raise ValueError("the endpoints list cannot be empty")
        self._endpoints = [(str(h), int(p)) for h, p in endpoints]
        self._active = 0
        await self._drop_connection()

    def _advance(self) -> None:
        self._active = (self._active + 1) % len(self._endpoints)

    async def _ensure_connected(self) -> NetClient:
        if self._client is None:
            self._client = await NetClient.connect(
                self.host, self.port, attempts=self._connect_attempts
            )
        return self._client

    async def _drop_connection(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request, retrying with backoff until answered.

        Raises :class:`ConnectionError` when every attempt failed.
        """
        payload = dict(payload)
        if payload.get("kind") in MUTATION_KINDS and payload.get("seq") is None:
            payload["seq"] = next(self._seq)
        last_error: Exception | None = None
        for attempt in range(max(1, self.policy.attempts)):
            if attempt:
                await asyncio.sleep(self.policy.delay(attempt - 1, self._rng))
            try:
                client = await self._ensure_connected()
                response = await client.request(payload)
            except (ConnectionError, json.JSONDecodeError, OSError) as exc:
                last_error = exc
                await self._drop_connection()
                self._advance()
                continue
            if not response.get("ok") and response.get("error_type") == "standby":
                # An unpromoted standby: the answer lives elsewhere (or
                # will, once promotion finishes).  Rotate and retry.
                last_error = None
                await self._drop_connection()
                self._advance()
                continue
            if (
                self.policy.retry_overloaded
                and not response.get("ok")
                and response.get("error_type") == "overloaded"
            ):
                last_error = None
                continue
            return response
        raise ConnectionError(
            f"request not answered after {self.policy.attempts} attempts "
            f"across {self._endpoints}: {last_error}"
        )

    async def close(self) -> None:
        await self._drop_connection()


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[index]


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` drive."""

    clients: int
    requests: int = 0
    ok: int = 0
    failed: int = 0
    overloaded: int = 0
    connect_failures: int = 0
    elapsed_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    error_types: dict[str, int] = field(default_factory=dict)
    error_samples: list[str] = field(default_factory=list)

    @property
    def req_per_s(self) -> float:
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def percentile_ms(self, q: float) -> float:
        return _percentile(sorted(self.latencies_ms), q)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary (the ``BENCH_serve.json`` core)."""
        latencies = sorted(self.latencies_ms)
        return {
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "overloaded": self.overloaded,
            "connect_failures": self.connect_failures,
            "elapsed_seconds": self.elapsed_seconds,
            "req_per_s": self.req_per_s,
            "latency_ms": {
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "p99": _percentile(latencies, 0.99),
                "max": latencies[-1] if latencies else 0.0,
            },
            "error_types": dict(self.error_types),
            "error_samples": list(self.error_samples[:5]),
        }


async def run_load(
    host: str,
    port: int,
    *,
    clients: int,
    requests_per_client: int,
    request_factory: Callable[[int, int], dict[str, Any]] | None = None,
    overloaded_is_failure: bool = True,
) -> LoadReport:
    """Drive ``clients`` closed-loop clients; returns the aggregate report.

    ``request_factory(client_index, request_index)`` builds each request
    dict (default: ``stats``).  Every response is accounted: ``ok`` /
    ``failed`` by the response's own flag, with ``overloaded`` split out
    (and optionally not counted as failure, for drives that deliberately
    exceed the admission bound).
    """
    factory = request_factory or (lambda _c, _i: {"kind": "stats"})
    report = LoadReport(clients=clients)

    async def one_client(index: int) -> None:
        try:
            client = await NetClient.connect(host, port)
        except ConnectionError as exc:
            report.connect_failures += 1
            report.error_samples.append(str(exc))
            return
        try:
            for i in range(requests_per_client):
                payload = factory(index, i)
                started = time.perf_counter()
                try:
                    response = await client.request(payload)
                except (ConnectionError, json.JSONDecodeError, OSError) as exc:
                    report.requests += 1
                    report.failed += 1
                    report.error_types["transport"] = (
                        report.error_types.get("transport", 0) + 1
                    )
                    report.error_samples.append(f"{type(exc).__name__}: {exc}")
                    return
                report.latencies_ms.append((time.perf_counter() - started) * 1e3)
                report.requests += 1
                if response.get("ok"):
                    report.ok += 1
                else:
                    error_type = str(response.get("error_type", "internal"))
                    report.error_types[error_type] = (
                        report.error_types.get(error_type, 0) + 1
                    )
                    if error_type == "overloaded":
                        report.overloaded += 1
                        if overloaded_is_failure:
                            report.failed += 1
                    else:
                        report.failed += 1
                    if len(report.error_samples) < 20:
                        report.error_samples.append(
                            str(response.get("error", "unknown error"))
                        )
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(one_client(index) for index in range(clients)))
    report.elapsed_seconds = time.perf_counter() - started
    return report
