"""The asyncio TCP JSON-lines server: many clients, many tenants, one process.

Wire protocol
-------------
One JSON object per line in, one JSON object per line out, in request
order per connection (responses to pipelined requests never reorder).
The request vocabulary is exactly :mod:`repro.service.requests`, plus:

* an optional ``"tenant"`` field on any engine request routes it to a
  resident engine by conference id (omitted: the default tenant);
* the tenant-management kinds in :data:`MANAGEMENT_KINDS`, served by the
  server itself rather than an engine;
* every engine response additionally carries ``"tenant"`` (where it ran)
  and ``"seq"`` (its position in that tenant's total execution order —
  the handle the conformance harness uses to replay a concurrent run
  serially).

Robustness contract, pinned by ``tests/test_net_fuzz.py``: every
non-blank input line gets exactly one structured response.  Malformed
frames — invalid UTF-8, broken JSON, non-object payloads, unknown kinds,
oversized lines — are answered with ``ok: false`` and a structured
``error_type``; they never kill the accept loop and never leak a
traceback.  Requests beyond the admission bounds are answered
immediately with ``error_type: "overloaded"``.

A ``{"kind": "shutdown"}`` line is served by the server, not a tenant:
admission flips to draining (late requests are refused as overloaded),
the listener closes, every tenant drains its admitted work, and the
shutdown response is the last line its connection sees.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Any

from repro.durability.journal import DurabilityConfig, TenantJournal
from repro.exceptions import ConfigurationError, RequestError
from repro.fault import FaultInjected, get_failpoints
from repro.obs.metrics import get_registry
from repro.replication import REPLICATION_KINDS, ReplicationSender, StandbyCoordinator
from repro.service.engine import AssignmentEngine
from repro.service.requests import Response, request_from_dict
from repro.service.session import classify_error
from repro.net.admission import AdmissionController
from repro.net.tenants import Pending, Tenant, TenantManager

__all__ = ["MANAGEMENT_KINDS", "AssignmentServer"]

#: Request kinds served by the server itself (no engine involved), with
#: their contracts.  ``docs/service.md`` renders this table verbatim and
#: ``tests/test_docs.py`` pins the two in sync.
MANAGEMENT_KINDS: dict[str, str] = {
    "create_tenant": (
        "register a resident engine under `tenant`; exactly one source of "
        "`problem` (inline object), `problem_path`, `snapshot_path` or "
        "`store_path` (SQLite problem store) — or no source on a durable "
        "server to recover the tenant's journal; optional `warm`, `default`"
    ),
    "evict_tenant": (
        "drain `tenant`'s admitted work, optionally persist to "
        "`snapshot_path`, then remove the engine"
    ),
    "list_tenants": "describe every resident tenant (no fields)",
    "promote": (
        "promote a warm standby: finish replaying the received tail, "
        "register the replicated engines as live tenants, start admitting "
        "writes (idempotent; refused on a non-standby)"
    ),
    "replication_status": (
        "report this server's replication role plus, as present, the "
        "primary's shipped/acked watermarks and lag and the standby's "
        "applied seqs and heartbeat age (no fields)"
    ),
    "shutdown": (
        "drain the whole server: refuse new work as `overloaded`, finish "
        "admitted requests, answer, close"
    ),
}

# Out-queue item tags: per-connection response order is the queue order.
_LINE = "line"  # (tag, response_dict) — answer known immediately
_PENDING = "pending"  # (tag, tenant_id, Pending) — await the tenant worker
_TASK = "task"  # (tag, asyncio.Task[dict], is_shutdown) — management op


class AssignmentServer:
    """A TCP JSON-lines front end over a :class:`TenantManager`.

    Construct (optionally pre-registering tenants via :meth:`add_tenant`),
    then either ``await run()`` — serve until a ``shutdown`` request —
    or ``await start()`` / ``await stop()`` for explicit lifecycle
    control in tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tenants: TenantManager | None = None,
        admission: AdmissionController | None = None,
        max_line_bytes: int = 1 << 20,
        max_batch: int = 128,
        backlog: int = 2048,
        durability: DurabilityConfig | None = None,
        replicate_to: tuple[str, int] | None = None,
        standby: bool = False,
        auto_promote_after: float | None = None,
        heartbeat_interval: float = 0.25,
    ) -> None:
        self.host = host
        self.port = port
        self.tenants = tenants if tenants is not None else TenantManager(max_batch=max_batch)
        self.admission = admission if admission is not None else AdmissionController()
        self.durability = durability
        self._max_line_bytes = max_line_bytes
        self._backlog = backlog
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._shutdown = asyncio.Event()
        self._drain_task: asyncio.Task | None = None
        self._registry = get_registry()
        self._replicate_to = replicate_to
        self._heartbeat_interval = float(heartbeat_interval)
        self._auto_promote_after = auto_promote_after
        self.replication: ReplicationSender | None = None
        if standby:
            if durability is None:
                raise ConfigurationError(
                    "a standby server needs a durability config — its WAL "
                    "root is where the replicated state lands"
                )
            self.standby: StandbyCoordinator | None = StandbyCoordinator(
                durability
            )
        else:
            self.standby = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def add_tenant(
        self, tenant_id: str, engine: AssignmentEngine, default: bool = False
    ) -> Tenant:
        """Pre-register a resident engine (before or after :meth:`start`).

        On a durable server the tenant gets a fresh journal (checkpoint 0
        is written immediately, so recovery always has a base); existing
        durable state under the same id must be recovered — via
        :meth:`recover_tenants` or a source-less ``create_tenant`` — or
        removed first, never silently shadowed.
        """
        journal = self._journal_for_new_tenant(tenant_id, engine)
        tenant = self.tenants.register(
            tenant_id, engine, default=default, journal=journal
        )
        self._activate(tenant)
        self._wire_shipping(tenant)
        return tenant

    def _wire_shipping(self, tenant: Tenant) -> None:
        """Point a durable tenant's journal at the replication stream."""
        sender = self.replication
        if sender is None or tenant.journal is None:
            return
        tenant_id = tenant.tenant_id
        tenant.journal.on_append = (
            lambda record, prev_seq: sender.ship(tenant_id, record, prev_seq)
        )
        # A fresh wire-up always resyncs: the standby may have never heard
        # of this tenant (new registration) or be behind it (reconnect).
        sender.request_resync(tenant_id)

    async def start_replication(self, host: str, port: int) -> ReplicationSender:
        """Attach a warm standby at ``host:port`` and start shipping.

        Callable at boot (``--replicate-to``) or later — including on a
        freshly promoted standby, which is how a failover chain regains
        redundancy.
        """
        if self.standby is not None and not self.standby.promoted:
            raise ConfigurationError(
                "an unpromoted standby cannot replicate onward; promote it first"
            )
        if self.replication is not None:
            raise ConfigurationError("replication is already configured")
        if self.durability is None:
            raise ConfigurationError(
                "replication needs a durable server (configure a WAL root)"
            )
        self.replication = ReplicationSender(
            self,
            str(host),
            int(port),
            heartbeat_interval=self._heartbeat_interval,
        )
        self.replication.start()
        for tenant_id in self.tenants.ids():
            self._wire_shipping(self.tenants.get(tenant_id))
        return self.replication

    def _activate(self, tenant: Tenant) -> None:
        """Start a freshly registered tenant's worker if we are serving."""
        if self._server is not None and self._loop is not None:
            try:
                running = asyncio.get_running_loop()
            except RuntimeError:
                running = None
            if running is self._loop:
                tenant.start()
            else:  # registered from outside the loop (test harness thread)
                self._loop.call_soon_threadsafe(tenant.start)

    def _journal_for_new_tenant(
        self, tenant_id: str, engine: AssignmentEngine
    ) -> TenantJournal | None:
        if self.durability is None:
            return None
        journal = TenantJournal(self.durability, tenant_id)
        if journal.has_checkpoint():
            raise ConfigurationError(
                f"tenant {tenant_id!r} has durable state under "
                f"{journal.directory}; recover it (server.recover_tenants() "
                "or a source-less create_tenant) or remove the directory first"
            )
        journal.initialise(engine)
        return journal

    def recover_tenants(self) -> list[str]:
        """Re-register every tenant with durable state under the WAL root.

        Synchronous and callable before :meth:`start` (the CLI boot path):
        each journal directory with a checkpoint is recovered — load the
        checkpoint, replay the WAL tail — and the rebuilt engine registered
        under the directory's tenant id.  Already-resident ids are skipped.
        Returns the recovered tenant ids.
        """
        if self.durability is None:
            return []
        root = self.durability.root
        if not root.exists():
            return []
        recovered: list[str] = []
        for directory in sorted(root.iterdir()):
            if not directory.is_dir():
                continue
            tenant_id = directory.name
            if tenant_id in self.tenants:
                continue
            journal = TenantJournal(self.durability, tenant_id)
            if not journal.has_checkpoint():
                continue
            outcome = journal.recover()
            tenant = self.tenants.register(
                tenant_id,
                outcome.engine,
                journal=journal,
                first_seq=outcome.next_seq,
            )
            self._activate(tenant)
            self._wire_shipping(tenant)
            recovered.append(tenant_id)
        return recovered

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — the collision-safe default
        for tests and for several servers on one machine.
        """
        if self._server is not None:
            raise ConfigurationError("server is already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_client,
            self.host,
            self.port,
            limit=self._max_line_bytes,
            backlog=self._backlog,
        )
        for tenant_id in self.tenants.ids():
            self.tenants.get(tenant_id).start()
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self.standby is not None:
            self.standby.start_monitor(self, self._auto_promote_after)
        if self._replicate_to is not None and self.replication is None:
            await self.start_replication(*self._replicate_to)
        return self.host, self.port

    async def wait_shutdown(self) -> None:
        """Block until a ``shutdown`` request has been served."""
        await self._shutdown.wait()

    async def drain(self) -> dict[str, Any]:
        """Gracefully drain the server and release :meth:`wait_shutdown`.

        The SIGTERM/SIGINT path: identical to serving a ``shutdown``
        request — admission flips to draining, the listener closes,
        admitted work finishes (durable tenants write a final checkpoint)
        — except there is no connection to answer on.  Idempotent:
        concurrent calls share one drain.
        """
        if self._drain_task is None:

            async def _do() -> dict[str, Any]:
                body = await self._drain_server()
                self._shutdown.set()
                return body

            self._drain_task = asyncio.get_running_loop().create_task(_do())
        return await asyncio.shield(self._drain_task)

    async def abort(self) -> None:
        """Crash-stop: drop listener, connections and workers — no drain,
        no final checkpoints, no answers (the recovery tests' kill switch)."""
        if self.replication is not None:
            await self.replication.stop()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        await self.tenants.abort_all()
        if self.standby is not None:
            await self.standby.abort()
        self._registry.gauge(
            "service.net.open_connections", "currently connected clients"
        ).set(0)

    async def run(self) -> None:
        """Serve until a ``shutdown`` request, then close everything."""
        await self.start()
        try:
            await self.wait_shutdown()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Close the listener, every connection, and every tenant."""
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        await self.tenants.close_all()
        if self.replication is not None:
            await self.replication.stop()
        if self.standby is not None:
            await self.standby.close()
        self._registry.gauge(
            "service.net.open_connections", "currently connected clients"
        ).set(0)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._registry.counter(
            "service.net.connections", "client connections accepted"
        ).inc()
        open_gauge = self._registry.gauge(
            "service.net.open_connections", "currently connected clients"
        )
        open_gauge.inc(1)
        out: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.get_running_loop().create_task(
            self._writer_loop(writer, out)
        )
        cancelled = False
        try:
            await self._reader_loop(reader, out)
        except asyncio.CancelledError:
            # Swallowed on purpose: this is the task's outermost frame, the
            # only canceller is stop(), and 3.11's streams callback logs a
            # spurious error for handler tasks that finish cancelled.
            cancelled = True
        finally:
            out.put_nowait(None)
            if cancelled:
                writer_task.cancel()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer_task
            open_gauge.inc(-1)
            if task is not None:
                self._conn_tasks.discard(task)

    async def _reader_loop(
        self, reader: asyncio.StreamReader, out: asyncio.Queue
    ) -> None:
        while True:
            try:
                raw = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as eof:
                if eof.partial:
                    self._handle_line(eof.partial, out)
                return
            except asyncio.LimitOverrunError:
                # The line exceeds the stream limit: one structured answer,
                # then discard bytes until its newline so the next frame
                # parses cleanly.
                self._registry.counter(
                    "service.net.protocol_errors", "unparseable input frames"
                ).inc()
                out.put_nowait(
                    (
                        _LINE,
                        Response.failure(
                            kind="parse",
                            error=(
                                "request line exceeds the "
                                f"{self._max_line_bytes}-byte limit"
                            ),
                        ).to_dict(),
                    )
                )
                if not await self._discard_line(reader):
                    return
            except (ConnectionResetError, OSError):
                return
            else:
                try:
                    self._handle_line(raw, out)
                except Exception as exc:  # noqa: BLE001 — fuzz contract: the
                    # reader loop survives anything a frame can throw at it
                    self._registry.counter(
                        "service.net.protocol_errors", "unparseable input frames"
                    ).inc()
                    out.put_nowait(
                        (
                            _LINE,
                            Response.failure(
                                kind="parse",
                                error=f"{type(exc).__name__}: {exc}",
                                error_type="internal",
                            ).to_dict(),
                        )
                    )

    async def _discard_line(self, reader: asyncio.StreamReader) -> bool:
        """Drop input until (and including) the next newline; False on EOF."""
        while True:
            try:
                await reader.readuntil(b"\n")
                return True
            except asyncio.LimitOverrunError as overrun:
                await reader.read(max(1, overrun.consumed))
            except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
                return False

    # ------------------------------------------------------------------
    # Per-line routing
    # ------------------------------------------------------------------
    def _handle_line(self, raw: bytes, out: asyncio.Queue) -> None:
        """Parse, route and admit one frame; always enqueues ≤1 response.

        Blank lines are skipped (matching the stdio loop); every other
        frame gets exactly one response, in arrival order.
        """
        if not raw.strip():
            return
        self._registry.counter(
            "service.net.requests", "non-blank request frames received"
        ).inc()

        def refuse(kind: str, error: str, error_type: str, request_id: Any = None) -> None:
            if error_type == "overloaded":
                self._registry.counter(
                    "service.net.overloaded", "requests refused by admission control"
                ).inc()
            elif error_type != "standby":  # standby refusals are well-formed
                self._registry.counter(
                    "service.net.protocol_errors", "unparseable input frames"
                ).inc()
            out.put_nowait(
                (
                    _LINE,
                    Response.failure(
                        kind=kind,
                        error=error,
                        error_type=error_type,
                        request_id=request_id,
                    ).to_dict(),
                )
            )

        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            refuse("parse", f"invalid UTF-8: {exc}", "request")
            return
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            refuse("parse", f"invalid JSON: {exc}", "request")
            return
        if not isinstance(payload, dict):
            refuse("parse", "a request must be a JSON object", "request")
            return

        request_id = payload.get("id")
        kind = payload.get("kind")
        if isinstance(kind, str) and kind in MANAGEMENT_KINDS:
            task = asyncio.get_running_loop().create_task(
                self._manage(str(kind), payload)
            )
            out.put_nowait((_TASK, task, kind == "shutdown"))
            return
        if isinstance(kind, str) and kind in REPLICATION_KINDS:
            task = asyncio.get_running_loop().create_task(
                self._replicate(str(kind), payload)
            )
            out.put_nowait((_TASK, task, False))
            return

        tenant_field = payload.get("tenant")
        if tenant_field is not None and not isinstance(tenant_field, str):
            refuse(
                str(kind) if isinstance(kind, str) else "parse",
                "'tenant' must be a string conference id",
                "request",
                request_id,
            )
            return
        try:
            request = request_from_dict(payload)
        except RequestError as exc:
            refuse("parse", str(exc), "request", request_id)
            return
        if self.standby is not None and not self.standby.promoted:
            refuse(
                request.kind,
                "this server is a warm standby (not promoted); "
                "fail over to the primary",
                "standby",
                request_id,
            )
            return
        if self.admission.draining:
            refuse(
                request.kind,
                "server is draining; no new requests are admitted",
                "overloaded",
                request_id,
            )
            return
        try:
            tenant = self.tenants.resolve(tenant_field)
        except (RequestError, KeyError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            refuse(request.kind, str(message), classify_error(exc), request_id)
            return
        if tenant.closed:
            refuse(
                request.kind,
                f"tenant {tenant.tenant_id!r} is draining; retry later",
                "overloaded",
                request_id,
            )
            return
        reason = self.admission.try_admit(tenant.tenant_id)
        if reason is not None:
            refuse(request.kind, reason, "overloaded", request_id)
            return
        pending = tenant.submit(request)
        pending.future.add_done_callback(
            lambda _f, tenant_id=tenant.tenant_id, handle=pending: (
                self._on_request_done(tenant_id, handle)
            )
        )
        out.put_nowait((_PENDING, tenant.tenant_id, pending))

    def _on_request_done(self, tenant_id: str, pending: Pending) -> None:
        self.admission.release(tenant_id)
        elapsed = asyncio.get_running_loop().time() - pending.enqueued
        self._registry.histogram(
            "service.net.request.seconds", "queue-to-answer request latency"
        ).observe(elapsed)

    async def _writer_loop(
        self, writer: asyncio.StreamWriter, out: asyncio.Queue
    ) -> None:
        """Answer in queue order; a ``None`` sentinel flushes and exits."""
        try:
            while True:
                item = await out.get()
                if item is None:
                    break
                is_shutdown = False
                if item[0] == _LINE:
                    data = item[1]
                elif item[0] == _PENDING:
                    _, tenant_id, pending = item
                    await pending.future
                    data = pending.response.to_dict()
                    data["tenant"] = tenant_id
                    data["seq"] = pending.seq
                else:
                    _, task, is_shutdown = item
                    data = await task
                try:
                    get_failpoints().hit("socket_write")
                except FaultInjected:
                    # Simulate the connection dying with the response in
                    # flight: the work is done (and journaled), the client
                    # never hears — its retry must hit the idempotency map.
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    break
                writer.write(json.dumps(data).encode("utf-8") + b"\n")
                await writer.drain()
                if is_shutdown:
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # the client went away; admitted work still completes
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------
    async def _manage(self, kind: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Serve one management request; failures become structured responses."""
        request_id = payload.get("id")
        try:
            if (
                kind in ("create_tenant", "evict_tenant")
                and self.standby is not None
                and not self.standby.promoted
            ):
                return Response.failure(
                    kind=kind,
                    error=(
                        "this server is a warm standby (not promoted); "
                        "tenant management is refused"
                    ),
                    error_type="standby",
                    request_id=request_id,
                ).to_dict()
            if kind == "create_tenant":
                body = await self._create_tenant(payload)
            elif kind == "evict_tenant":
                body = await self._evict_tenant(payload)
            elif kind == "list_tenants":
                body = self._list_tenants()
            elif kind == "promote":
                body = await self._promote()
            elif kind == "replication_status":
                body = self._replication_status()
            else:  # shutdown
                body = await self._drain_server()
            return Response(
                kind=kind, ok=True, payload=body, request_id=request_id
            ).to_dict()
        except Exception as exc:  # noqa: BLE001 — management must not kill the loop
            message = exc.args[0] if exc.args else str(exc)
            error_type = classify_error(exc)
            if error_type == "internal":
                message = f"{type(exc).__name__}: {exc}"
            return Response.failure(
                kind=kind,
                error=str(message),
                error_type=error_type,
                request_id=request_id,
            ).to_dict()

    async def _create_tenant(self, payload: dict[str, Any]) -> dict[str, Any]:
        tenant_id = payload.get("tenant")
        if not isinstance(tenant_id, str) or not tenant_id:
            raise RequestError("a create_tenant request needs a string 'tenant' id")
        if self.admission.draining:
            raise RequestError("server is draining; no new tenants are admitted")
        sources = [
            name
            for name in ("problem", "problem_path", "snapshot_path", "store_path")
            if payload.get(name) is not None
        ]
        if tenant_id in self.tenants:
            raise ConfigurationError(
                f"tenant {tenant_id!r} already exists; evict it first"
            )
        if len(sources) == 0 and self.durability is not None:
            # A source-less create on a durable server resumes the
            # tenant's journaled state (the wire-level recovery path).
            journal = TenantJournal(self.durability, tenant_id)
            if journal.has_checkpoint():
                outcome = await asyncio.to_thread(journal.recover)
                tenant = self.tenants.register(
                    tenant_id,
                    outcome.engine,
                    default=bool(payload.get("default", False)),
                    journal=journal,
                    first_seq=outcome.next_seq,
                )
                tenant.start()
                self._wire_shipping(tenant)
                return {
                    "tenant": tenant_id,
                    "recovered": outcome.stats.to_dict(),
                    **tenant.describe(),
                }
        if len(sources) != 1:
            raise RequestError(
                "a create_tenant request needs exactly one of "
                "'problem', 'problem_path', 'snapshot_path' or 'store_path'"
                + (
                    " (or existing durable state to recover)"
                    if self.durability is not None
                    else ""
                )
            )
        engine = await asyncio.to_thread(self._build_engine, sources[0], payload)
        journal = await asyncio.to_thread(
            self._journal_for_new_tenant, tenant_id, engine
        )
        tenant = self.tenants.register(
            tenant_id,
            engine,
            default=bool(payload.get("default", False)),
            journal=journal,
        )
        tenant.start()
        self._wire_shipping(tenant)
        if payload.get("warm"):
            await tenant.run_in_worker(engine.warm)
        return {"tenant": tenant_id, **tenant.describe()}

    @staticmethod
    def _build_engine(source: str, payload: dict[str, Any]) -> AssignmentEngine:
        if source == "snapshot_path":
            return AssignmentEngine.load(str(payload["snapshot_path"]))
        if source == "store_path":
            from repro.store.sqlite import SqliteProblemStore

            return AssignmentEngine.from_store(
                SqliteProblemStore.open(str(payload["store_path"]))
            )
        if source == "problem_path":
            from repro.data.io import load_problem

            return AssignmentEngine(load_problem(str(payload["problem_path"])))
        from repro.data.io import problem_from_dict

        problem = payload["problem"]
        if not isinstance(problem, dict):
            raise RequestError("'problem' must be a JSON problem object")
        return AssignmentEngine(problem_from_dict(problem))

    async def _evict_tenant(self, payload: dict[str, Any]) -> dict[str, Any]:
        tenant_id = payload.get("tenant")
        if not isinstance(tenant_id, str) or not tenant_id:
            raise RequestError("an evict_tenant request needs a string 'tenant' id")
        tenant = await self.tenants.evict(tenant_id)
        self.admission.forget(tenant_id)
        snapshot_path = payload.get("snapshot_path")
        body: dict[str, Any] = {"tenant": tenant_id, "evicted": True}
        if snapshot_path is not None:
            # The tenant is drained and its worker stopped: the engine is
            # quiescent, so snapshotting off-loop is safe.
            path = await asyncio.to_thread(
                tenant.engine.save_snapshot, str(snapshot_path)
            )
            body["snapshot_path"] = str(path)
        return body

    def _list_tenants(self) -> dict[str, Any]:
        return {
            "tenants": self.tenants.describe(),
            "default": self.tenants.default_tenant,
            "pending": self.admission.total_pending,
            "draining": self.admission.draining,
        }

    async def _replicate(self, kind: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Serve one replication frame (standby side); refusals structure."""
        request_id = payload.get("id")
        try:
            if self.standby is None:
                raise ConfigurationError(
                    "this server is not a standby; replication frames are refused"
                )
            body = await self.standby.handle(kind, payload)
            return Response(
                kind=kind, ok=True, payload=body, request_id=request_id
            ).to_dict()
        except Exception as exc:  # noqa: BLE001 — frames must not kill the loop
            message = exc.args[0] if exc.args else str(exc)
            error_type = classify_error(exc)
            if error_type == "internal":
                message = f"{type(exc).__name__}: {exc}"
            return Response.failure(
                kind=kind,
                error=str(message),
                error_type=error_type,
                request_id=request_id,
            ).to_dict()

    async def _promote(self) -> dict[str, Any]:
        if self.standby is None:
            raise ConfigurationError(
                "this server is not a standby; there is nothing to promote"
            )
        body = await self.standby.promote(self)
        # The new primary ships onward if replication was configured later.
        for tenant_id in self.tenants.ids():
            self._wire_shipping(self.tenants.get(tenant_id))
        return body

    def _replication_status(self) -> dict[str, Any]:
        if self.standby is not None and not self.standby.promoted:
            role = "standby"
        elif self.replication is not None or self.standby is not None:
            role = "primary"
        else:
            role = "standalone"
        body: dict[str, Any] = {"role": role}
        if self.standby is not None:
            body["standby"] = self.standby.status(
                asyncio.get_running_loop().time()
            )
        if self.replication is not None:
            body["replication"] = self.replication.status()
        return body

    async def _drain_server(self) -> dict[str, Any]:
        self.admission.drain()
        if self._server is not None:
            self._server.close()
        closed = len(self.tenants)
        await self.tenants.close_all()
        return {"shutdown": True, "tenants_closed": closed}
