"""Multi-tenancy: many resident engines, one per conference id.

A tenant is one conference: an :class:`~repro.service.engine.AssignmentEngine`
plus the :class:`~repro.service.session.EngineSession` batcher, a FIFO
request queue, and a **single-thread executor**.  The shape answers the
two constraints of serving CPU-bound solver work from an asyncio loop:

* solver work must not block the event loop — every batch runs in the
  tenant's worker thread via ``run_in_executor``, so accepts, parses and
  admission decisions stay responsive under long solves;
* the engine and session are single-writer by design — one worker
  thread per tenant serialises all access, so no engine-level locking is
  needed and request effects apply in a well-defined total order (the
  ``seq`` number echoed on every response).

Cross-client batching falls out of the queue: whenever the worker wakes
it drains *everything* queued at that moment — requests from any number
of connections — through one :meth:`EngineSession.drain`, which is where
compatible journal queries coalesce behind a single cache warm-up.  The
batcher that PR 1 built for scripted replays is thereby lifted above the
socket layer, exactly as the ROADMAP prescribes.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.exceptions import RequestError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.service.engine import AssignmentEngine
from repro.service.requests import Request, Response
from repro.service.session import EngineSession

TRACER = get_tracer()

__all__ = ["Pending", "Tenant", "TenantManager"]


@dataclass
class Pending:
    """One admitted request waiting for (or holding) its response."""

    request: Request
    future: asyncio.Future
    seq: int
    enqueued: float = 0.0
    response: Response | None = None


class Tenant:
    """One resident conference: engine + session + queue + worker thread."""

    def __init__(self, tenant_id: str, engine: AssignmentEngine, max_batch: int = 128) -> None:
        self.tenant_id = tenant_id
        self.engine = engine
        self.session = EngineSession(engine)
        self._max_batch = max(1, max_batch)
        self._queue: asyncio.Queue[Pending] = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"tenant-{tenant_id}"
        )
        self._worker: asyncio.Task | None = None
        self._seq = itertools.count(1)
        self._inflight = 0
        self._idle: asyncio.Event = asyncio.Event()
        self._idle.set()
        self.closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker task (requires a running event loop)."""
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(
                self._run(), name=f"tenant-worker-{self.tenant_id}"
            )

    async def close(self) -> None:
        """Drain queued work, stop the worker, release the thread.

        New submissions must already have been cut off (``closed`` is set
        here first; the server's admission path checks it).  Queued and
        in-flight requests are answered normally before the worker dies —
        eviction never drops admitted work.
        """
        self.closed = True
        await self._idle.wait()
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Request flow
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Admitted-but-unanswered requests (queue + in execution)."""
        return self._inflight

    def submit(self, request: Request) -> Pending:
        """Enqueue one request; returns its :class:`Pending` handle.

        Must be called from the event loop thread, after admission.  The
        handle's future resolves (in the loop) to the handle itself once
        the response is attached.
        """
        if self.closed:
            raise RequestError(f"tenant {self.tenant_id!r} is shutting down")
        loop = asyncio.get_running_loop()
        pending = Pending(
            request=request,
            future=loop.create_future(),
            seq=next(self._seq),
            enqueued=loop.time(),
        )
        self._inflight += 1
        self._idle.clear()
        pending.future.add_done_callback(self._on_answered)
        self._queue.put_nowait(pending)
        return pending

    async def run_in_worker(self, fn, *args):
        """Run ``fn`` on this tenant's worker thread (serialised with batches)."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    def _on_answered(self, _future: asyncio.Future) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self._max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [pending.request for pending in batch]
            try:
                responses = await loop.run_in_executor(
                    self._executor, self._serve_batch, requests
                )
            except Exception as exc:  # noqa: BLE001 — a dead worker drops the tenant
                responses = [
                    Response.failure(
                        kind=request.kind,
                        error=f"{type(exc).__name__}: {exc}",
                        request_id=request.request_id,
                        error_type="internal",
                    )
                    for request in requests
                ]
            for pending, response in zip(batch, responses):
                pending.response = response
                if not pending.future.done():
                    pending.future.set_result(pending)

    def _serve_batch(self, requests: list[Request]) -> list[Response]:
        """Serve one drained batch in the tenant's worker thread.

        The session guarantees responses are independent of batching
        boundaries (batching only warms caches), which is what makes the
        concurrent server bitwise-conformant with a serial replay.
        """
        registry = get_registry()
        with TRACER.span("net.batch", tenant=self.tenant_id, size=len(requests)):
            for request in requests:
                self.session.submit(request)
            responses = self.session.drain()
        registry.counter(
            "service.net.batches", "tenant-worker batch drains"
        ).inc()
        registry.counter(
            "service.net.batched_requests", "requests served through batch drains"
        ).inc(len(requests))
        return responses

    def describe(self) -> dict[str, Any]:
        """JSON-serialisable summary for ``list_tenants``."""
        problem = self.engine.problem
        return {
            "pending": self.pending,
            "revision": self.engine.revision,
            "num_papers": problem.num_papers,
            "num_reviewers": problem.num_reviewers,
            "has_assignment": self.engine.assignment is not None,
            "journal_batches": self.session.stats()["session"]["journal_batches"],
            "closed": self.closed,
        }


class TenantManager:
    """The resident tenant map, keyed by conference id."""

    def __init__(self, max_batch: int = 128) -> None:
        self._tenants: dict[str, Tenant] = {}
        self._max_batch = max_batch
        self.default_tenant: str | None = None

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def ids(self) -> list[str]:
        return sorted(self._tenants)

    def register(
        self, tenant_id: str, engine: AssignmentEngine, default: bool = False
    ) -> Tenant:
        """Add a resident engine under ``tenant_id``.

        Raises
        ------
        ConfigurationError
            If the id is already taken (evict first).
        """
        from repro.exceptions import ConfigurationError

        if not tenant_id:
            raise RequestError("a tenant id must be a non-empty string")
        if tenant_id in self._tenants:
            raise ConfigurationError(
                f"tenant {tenant_id!r} already exists; evict it first"
            )
        tenant = Tenant(tenant_id, engine, max_batch=self._max_batch)
        self._tenants[tenant_id] = tenant
        if default or self.default_tenant is None:
            self.default_tenant = tenant_id
        get_registry().gauge(
            "service.net.tenants", "resident tenant engines"
        ).set(len(self._tenants))
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise KeyError(f"unknown tenant id: {tenant_id!r}") from None

    def resolve(self, tenant_id: str | None) -> Tenant:
        """The tenant a request names — or the unambiguous default.

        ``None`` falls back to the configured default tenant, or to the
        only resident tenant when exactly one exists.
        """
        if tenant_id is not None:
            return self.get(tenant_id)
        if self.default_tenant is not None and self.default_tenant in self._tenants:
            return self._tenants[self.default_tenant]
        if len(self._tenants) == 1:
            return next(iter(self._tenants.values()))
        raise RequestError(
            "a request needs a 'tenant' field (no default tenant is configured); "
            f"resident tenants: {self.ids()}"
        )

    async def evict(self, tenant_id: str) -> Tenant:
        """Drain and remove one tenant; returns the closed tenant."""
        tenant = self.get(tenant_id)
        await tenant.close()
        del self._tenants[tenant_id]
        if self.default_tenant == tenant_id:
            self.default_tenant = next(iter(sorted(self._tenants)), None)
        get_registry().gauge(
            "service.net.tenants", "resident tenant engines"
        ).set(len(self._tenants))
        return tenant

    async def close_all(self) -> None:
        """Drain and close every tenant (server shutdown)."""
        for tenant_id in self.ids():
            tenant = self._tenants.pop(tenant_id)
            await tenant.close()
        get_registry().gauge(
            "service.net.tenants", "resident tenant engines"
        ).set(0)

    def describe(self) -> dict[str, Any]:
        return {tenant_id: tenant.describe() for tenant_id, tenant in sorted(self._tenants.items())}
