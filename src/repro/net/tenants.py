"""Multi-tenancy: many resident engines, one per conference id.

A tenant is one conference: an :class:`~repro.service.engine.AssignmentEngine`
plus the :class:`~repro.service.session.EngineSession` batcher, a FIFO
request queue, and a **single-thread executor**.  The shape answers the
two constraints of serving CPU-bound solver work from an asyncio loop:

* solver work must not block the event loop — every batch runs in the
  tenant's worker thread via ``run_in_executor``, so accepts, parses and
  admission decisions stay responsive under long solves;
* the engine and session are single-writer by design — one worker
  thread per tenant serialises all access, so no engine-level locking is
  needed and request effects apply in a well-defined total order (the
  ``seq`` number echoed on every response).

Cross-client batching falls out of the queue: whenever the worker wakes
it drains *everything* queued at that moment — requests from any number
of connections — through one :meth:`EngineSession.drain`, which is where
compatible journal queries coalesce behind a single cache warm-up.  The
batcher that PR 1 built for scripted replays is thereby lifted above the
socket layer, exactly as the ROADMAP prescribes.

A tenant given a :class:`~repro.durability.TenantJournal` is **durable**:
each mutation in a batch is appended to the write-ahead log *before* it
executes, retried mutations (same client ``seq``) are answered from the
idempotency map without re-executing, and a crash anywhere in the worker
triggers a supervised restart — rebuild the engine from checkpoint + WAL
replay (``service.net.worker_restarts``), answer the in-flight batch from
already-computed responses, replayed responses and fresh dispatches, and
keep serving.  The durable batch attaches each response to its
:class:`Pending` *as it is computed*, so a mid-batch crash loses nothing
that was already answered.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.durability.journal import TenantJournal
from repro.exceptions import RequestError
from repro.fault import get_failpoints
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.service.engine import AssignmentEngine
from repro.service.requests import MUTATION_KINDS, Request, Response
from repro.service.session import EngineSession

TRACER = get_tracer()

__all__ = ["Pending", "Tenant", "TenantManager"]


@dataclass
class Pending:
    """One admitted request waiting for (or holding) its response."""

    request: Request
    future: asyncio.Future
    seq: int
    enqueued: float = 0.0
    response: Response | None = None


class Tenant:
    """One resident conference: engine + session + queue + worker thread."""

    def __init__(
        self,
        tenant_id: str,
        engine: AssignmentEngine,
        max_batch: int = 128,
        journal: TenantJournal | None = None,
        first_seq: int = 1,
    ) -> None:
        self.tenant_id = tenant_id
        self.engine = engine
        self.session = EngineSession(engine)
        self.journal = journal
        self.worker_restarts = 0
        self._max_batch = max(1, max_batch)
        self._queue: asyncio.Queue[Pending] = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"tenant-{tenant_id}"
        )
        self._worker: asyncio.Task | None = None
        self._seq = itertools.count(max(1, first_seq))
        self._inflight = 0
        self._idle: asyncio.Event = asyncio.Event()
        self._idle.set()
        self.closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker task (requires a running event loop)."""
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(
                self._run(), name=f"tenant-worker-{self.tenant_id}"
            )

    async def close(self) -> None:
        """Drain queued work, stop the worker, release the thread.

        New submissions must already have been cut off (``closed`` is set
        here first; the server's admission path checks it).  Queued and
        in-flight requests are answered normally before the worker dies —
        eviction never drops admitted work.
        """
        self.closed = True
        await self._idle.wait()
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        if self.journal is not None:
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self._final_checkpoint
            )
        elif self.engine.store is not None:
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self._close_store
            )
        self._executor.shutdown(wait=True)

    def _final_checkpoint(self) -> None:
        """Checkpoint on graceful close so restart needs no WAL replay.

        Best-effort: a failed final checkpoint (e.g. an injected
        ``snapshot_write`` fault) must not sink the drain — the WAL
        already holds everything, recovery just replays a longer tail.
        """
        try:
            self.journal.checkpoint(self.engine)
        except Exception:  # noqa: BLE001
            pass
        finally:
            self.journal.close()
            self._close_store()

    def _close_store(self) -> None:
        """Commit and release the tenant's problem store, if any."""
        store = self.engine.store
        if store is None:
            return
        try:
            store.close()
        except Exception:  # noqa: BLE001
            pass

    async def abort(self) -> None:
        """Crash-stop the tenant: no drain, no checkpoint, no answers.

        The crash-recovery tests use this to simulate a process dying
        mid-stream; the journal's WAL file is simply dropped (appends are
        flushed per record, so a same-machine reader sees them all).
        """
        self.closed = True
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.journal is not None:
            self.journal.abort()
        store = self.engine.store
        if store is not None:
            # Crash semantics: discard uncommitted deltas, never commit.
            store.abort()

    # ------------------------------------------------------------------
    # Request flow
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Admitted-but-unanswered requests (queue + in execution)."""
        return self._inflight

    def submit(self, request: Request) -> Pending:
        """Enqueue one request; returns its :class:`Pending` handle.

        Must be called from the event loop thread, after admission.  The
        handle's future resolves (in the loop) to the handle itself once
        the response is attached.
        """
        if self.closed:
            raise RequestError(f"tenant {self.tenant_id!r} is shutting down")
        loop = asyncio.get_running_loop()
        pending = Pending(
            request=request,
            future=loop.create_future(),
            seq=next(self._seq),
            enqueued=loop.time(),
        )
        self._inflight += 1
        self._idle.clear()
        pending.future.add_done_callback(self._on_answered)
        self._queue.put_nowait(pending)
        return pending

    async def run_in_worker(self, fn, *args):
        """Run ``fn`` on this tenant's worker thread (serialised with batches)."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    def _on_answered(self, _future: asyncio.Future) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self._max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                if self.journal is not None:
                    responses = await loop.run_in_executor(
                        self._executor, self._serve_batch_durable, batch
                    )
                else:
                    requests = [pending.request for pending in batch]
                    responses = await loop.run_in_executor(
                        self._executor, self._serve_batch, requests
                    )
            except Exception as exc:  # noqa: BLE001 — the worker crashed
                if self.journal is not None:
                    responses = await self._restart_worker(batch, exc)
                else:
                    responses = [
                        Response.failure(
                            kind=pending.request.kind,
                            error=f"{type(exc).__name__}: {exc}",
                            request_id=pending.request.request_id,
                            error_type="internal",
                        )
                        for pending in batch
                    ]
            for pending, response in zip(batch, responses):
                pending.response = response
                if not pending.future.done():
                    pending.future.set_result(pending)

    def _serve_batch(self, requests: list[Request]) -> list[Response]:
        """Serve one drained batch in the tenant's worker thread.

        The session guarantees responses are independent of batching
        boundaries (batching only warms caches), which is what makes the
        concurrent server bitwise-conformant with a serial replay.
        """
        registry = get_registry()
        get_failpoints().hit("tenant_worker")
        with TRACER.span("net.batch", tenant=self.tenant_id, size=len(requests)):
            for request in requests:
                self.session.submit(request)
            responses = self.session.drain()
        registry.counter(
            "service.net.batches", "tenant-worker batch drains"
        ).inc()
        registry.counter(
            "service.net.batched_requests", "requests served through batch drains"
        ).inc(len(requests))
        return responses

    # ------------------------------------------------------------------
    # The durable path (journal-backed tenants)
    # ------------------------------------------------------------------
    def _serve_batch_durable(self, batch: list[Pending]) -> list[Response]:
        """Serve one batch with write-ahead journaling (worker thread).

        Serial per request: dedupe check → WAL append (mutations only) →
        dispatch → idempotency-map update → attach the response to its
        :class:`Pending`.  The incremental attachment is what makes the
        supervised restart lossless: a crash between requests reuses every
        response already computed instead of recomputing (and re-applying)
        the prefix.
        """
        registry = get_registry()
        get_failpoints().hit("tenant_worker")
        with TRACER.span("net.batch", tenant=self.tenant_id, size=len(batch)):
            for pending in batch:
                pending.response = self._serve_one_durable(pending)
            self.journal.sync_batch()
            if self.journal.should_checkpoint:
                self.journal.checkpoint(self.engine)
        registry.counter(
            "service.net.batches", "tenant-worker batch drains"
        ).inc()
        registry.counter(
            "service.net.batched_requests", "requests served through batch drains"
        ).inc(len(batch))
        return [pending.response for pending in batch]

    def _serve_one_durable(self, pending: Pending) -> Response:
        request = pending.request
        journaled = request.kind in MUTATION_KINDS
        if journaled and request.client_seq is not None:
            stored = self.journal.applied.get(request.client_seq)
            if stored is not None:
                # A retry of an already-applied mutation: answer from the
                # stored response — exactly-once, no WAL append.
                get_registry().counter(
                    "durability.deduped",
                    "mutations answered from the idempotency map",
                ).inc()
                return stored
        if journaled:
            self.journal.append(pending.seq, request)
        response = self.session.dispatch(request)
        if journaled and request.client_seq is not None:
            self.journal.record_applied(request.client_seq, response)
        return response

    async def _restart_worker(self, batch: list[Pending], exc: BaseException) -> list[Response]:
        """Supervised restart after a worker crash (durable tenants only).

        Rebuild engine + session from checkpoint + WAL replay, then answer
        the in-flight batch: responses computed before the crash are kept,
        the request that was journaled-but-unanswered is answered from its
        replayed response, and the unserved suffix is dispatched fresh.  A
        second crash while finishing the batch downgrades to internal-error
        answers instead of restarting forever.
        """
        self.worker_restarts += 1
        get_registry().counter(
            "service.net.worker_restarts",
            "supervised tenant-worker restarts after a crash",
        ).inc()
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                self._executor, self._rebuild_from_journal
            )
            return await loop.run_in_executor(
                self._executor, self._answer_after_restart, batch, outcome
            )
        except Exception as again:  # noqa: BLE001 — no restart loops
            return [
                pending.response
                if pending.response is not None
                else Response.failure(
                    kind=pending.request.kind,
                    error=f"{type(again).__name__}: {again}",
                    request_id=pending.request.request_id,
                    error_type="internal",
                )
                for pending in batch
            ]

    def _rebuild_from_journal(self):
        outcome = self.journal.recover(parallel=self.engine.parallel)
        self.engine = outcome.engine
        self.session = outcome.session
        return outcome

    def _answer_after_restart(self, batch: list[Pending], outcome) -> list[Response]:
        responses: list[Response] = []
        for pending in batch:
            if pending.response is not None:
                responses.append(pending.response)
            elif pending.seq in outcome.replayed:
                responses.append(outcome.replayed[pending.seq])
            else:
                responses.append(self._serve_one_durable(pending))
        self.journal.sync_batch()
        return responses

    def describe(self) -> dict[str, Any]:
        """JSON-serialisable summary for ``list_tenants``."""
        problem = self.engine.problem
        return {
            "pending": self.pending,
            "revision": self.engine.revision,
            "num_papers": problem.num_papers,
            "num_reviewers": problem.num_reviewers,
            "has_assignment": self.engine.assignment is not None,
            "journal_batches": self.session.stats()["session"]["journal_batches"],
            "closed": self.closed,
            "durable": self.journal is not None,
            "store_backed": self.engine.store is not None,
            "store_path": (
                str(self.engine.store_path)
                if self.engine.store_path is not None
                else None
            ),
            "worker_restarts": self.worker_restarts,
            **(
                {"durability": self.journal.describe()}
                if self.journal is not None
                else {}
            ),
        }


class TenantManager:
    """The resident tenant map, keyed by conference id."""

    def __init__(self, max_batch: int = 128) -> None:
        self._tenants: dict[str, Tenant] = {}
        self._max_batch = max_batch
        self.default_tenant: str | None = None

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def ids(self) -> list[str]:
        return sorted(self._tenants)

    def register(
        self,
        tenant_id: str,
        engine: AssignmentEngine,
        default: bool = False,
        journal: TenantJournal | None = None,
        first_seq: int = 1,
    ) -> Tenant:
        """Add a resident engine under ``tenant_id``.

        A ``journal`` makes the tenant durable (write-ahead logged);
        ``first_seq`` seeds the execution sequence past what a recovered
        journal already contains.

        Raises
        ------
        ConfigurationError
            If the id is already taken (evict first).
        """
        from repro.exceptions import ConfigurationError

        if not tenant_id:
            raise RequestError("a tenant id must be a non-empty string")
        if tenant_id in self._tenants:
            raise ConfigurationError(
                f"tenant {tenant_id!r} already exists; evict it first"
            )
        tenant = Tenant(
            tenant_id,
            engine,
            max_batch=self._max_batch,
            journal=journal,
            first_seq=first_seq,
        )
        self._tenants[tenant_id] = tenant
        if default or self.default_tenant is None:
            self.default_tenant = tenant_id
        get_registry().gauge(
            "service.net.tenants", "resident tenant engines"
        ).set(len(self._tenants))
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise KeyError(f"unknown tenant id: {tenant_id!r}") from None

    def resolve(self, tenant_id: str | None) -> Tenant:
        """The tenant a request names — or the unambiguous default.

        ``None`` falls back to the configured default tenant, or to the
        only resident tenant when exactly one exists.
        """
        if tenant_id is not None:
            return self.get(tenant_id)
        if self.default_tenant is not None and self.default_tenant in self._tenants:
            return self._tenants[self.default_tenant]
        if len(self._tenants) == 1:
            return next(iter(self._tenants.values()))
        raise RequestError(
            "a request needs a 'tenant' field (no default tenant is configured); "
            f"resident tenants: {self.ids()}"
        )

    async def evict(self, tenant_id: str) -> Tenant:
        """Drain and remove one tenant; returns the closed tenant."""
        tenant = self.get(tenant_id)
        await tenant.close()
        del self._tenants[tenant_id]
        if self.default_tenant == tenant_id:
            self.default_tenant = next(iter(sorted(self._tenants)), None)
        get_registry().gauge(
            "service.net.tenants", "resident tenant engines"
        ).set(len(self._tenants))
        return tenant

    async def close_all(self) -> None:
        """Drain and close every tenant (server shutdown)."""
        for tenant_id in self.ids():
            tenant = self._tenants.pop(tenant_id)
            await tenant.close()
        get_registry().gauge(
            "service.net.tenants", "resident tenant engines"
        ).set(0)

    async def abort_all(self) -> None:
        """Crash-stop every tenant (the recovery tests' kill switch)."""
        for tenant_id in self.ids():
            tenant = self._tenants.pop(tenant_id)
            await tenant.abort()
        get_registry().gauge(
            "service.net.tenants", "resident tenant engines"
        ).set(0)

    def describe(self) -> dict[str, Any]:
        return {tenant_id: tenant.describe() for tenant_id, tenant in sorted(self._tenants.items())}
