"""Asyncio network front end for the serving subsystem.

:mod:`repro.service` is a synchronous, single-engine stack: one
:class:`~repro.service.engine.AssignmentEngine`, one batching
:class:`~repro.service.session.EngineSession`, one blocking JSON-lines
loop over stdio.  This package is the production-shaped layer above it —
stdlib ``asyncio`` only, no new dependencies:

* :mod:`repro.net.server` — :class:`AssignmentServer`: a TCP JSON-lines
  server fielding many concurrent clients from one process, with
  tenant-management requests (create / evict / list) and graceful
  drain/shutdown.
* :mod:`repro.net.tenants` — multi-tenancy: one resident engine *per
  conference id*, each with its own single-thread executor so CPU-bound
  solver work never blocks the event loop, and its own
  :class:`~repro.service.session.EngineSession` lifted above the socket
  layer so compatible journal queries from *different clients* coalesce
  into one batched drain.
* :mod:`repro.net.admission` — bounded queue depth per tenant and per
  process; requests beyond the bound are answered immediately with the
  structured ``overloaded`` error type instead of growing the backlog.
* :mod:`repro.net.client` — an asyncio JSON-lines client plus the
  closed-loop load generator behind ``benchmarks/bench_serve_load.py``.

The wire protocol is the JSON-lines vocabulary of
:mod:`repro.service.requests`, extended with a ``tenant`` field for
routing and the tenant-management kinds; see ``docs/service.md``
("Network serving") for the full contract.
"""

from repro.net.admission import AdmissionController
from repro.net.client import LoadReport, NetClient, run_load
from repro.net.server import MANAGEMENT_KINDS, AssignmentServer
from repro.net.tenants import Tenant, TenantManager

__all__ = [
    "AdmissionController",
    "AssignmentServer",
    "LoadReport",
    "MANAGEMENT_KINDS",
    "NetClient",
    "Tenant",
    "TenantManager",
    "run_load",
]
