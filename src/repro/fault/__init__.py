"""Deterministic, seedable fault injection at named sites.

Crash-safety claims are only as good as the faults they were tested
against, so the durability layer (:mod:`repro.durability`) ships with
its own chaos harness: a closed registry of **failpoints** — named
places in the serving stack where a fault can be injected on demand —
each toggled independently with a deterministic firing mode.

Design rules, pinned by ``tests/test_fault.py`` and ``docs/durability.md``:

* the site vocabulary is **closed** (:data:`FAILPOINT_SITES`); asking for
  an unknown site is a :class:`~repro.exceptions.ConfigurationError`, so
  a typo in a chaos script fails loudly instead of silently testing
  nothing;
* firing is **deterministic and seedable** — ``always``, ``once``,
  ``nth`` and seeded ``probability`` modes — so every chaos test can be
  replayed exactly;
* everything is **off by default** and the disabled hot path is one
  dict lookup, cheap enough to leave ``hit()`` calls on the serving
  path permanently;
* site names are dot-free on purpose: they appear as one path segment
  in the ``fault.<site>.injections`` metric names of
  :mod:`repro.obs.names`.

Toggle via environment (``REPRO_FAULT="wal_append=once,solver_call=
probability:0.25"``, optional ``REPRO_FAULT_SEED``) or over the wire
with the ``fault`` request kind served by
:class:`~repro.service.session.EngineSession`.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ConfigurationError
from repro.obs.metrics import get_registry

__all__ = [
    "FAILPOINT_SITES",
    "FIRE_MODES",
    "FaultInjected",
    "FailpointRegistry",
    "get_failpoints",
]

#: The closed vocabulary of failpoint sites: name -> where it lives and
#: what firing simulates.  ``docs/durability.md`` renders this table and
#: ``tests/test_docs.py`` pins the two in sync.  Names are single
#: dot-free segments (they embed into ``fault.<site>.injections``).
FAILPOINT_SITES: dict[str, str] = {
    "snapshot_write": (
        "`data.io` atomic writes (engine snapshots, journal checkpoints): "
        "fires after the temp file is written and fsynced, before the "
        "atomic rename — a crash mid-checkpoint"
    ),
    "wal_append": (
        "`durability.wal` append: fires before the record reaches the "
        "segment file — a crash before the mutation was made durable"
    ),
    "tenant_worker": (
        "`net.tenants` worker loop: fires at the head of a batch drain on "
        "the tenant's worker thread — a crashed worker, exercising the "
        "supervised restart path"
    ),
    "socket_write": (
        "`net.server` writer loop: fires before a response line is written "
        "to the client socket and aborts the connection — a response lost "
        "in flight, exercising client retry + idempotent replay"
    ),
    "solver_call": (
        "`service.engine` solve: fires before the conference solver runs — "
        "a failing solver, answered as a structured `internal` error"
    ),
    "repl_send": (
        "`replication.sender` ship: fires before a replication frame is "
        "written to the standby connection and drops the link — a primary "
        "that loses its standby mid-stream, exercising reconnect + catch-up"
    ),
    "repl_apply": (
        "`replication.standby` apply: fires before a shipped record is "
        "journaled and replayed on the standby — a standby that fails to "
        "apply, answered as a `gap` so the primary re-ships"
    ),
    "heartbeat": (
        "`replication.sender` heartbeat: fires in place of sending one "
        "heartbeat frame, silencing the primary — exercising standby "
        "health monitoring and automatic promotion"
    ),
}

#: Firing modes and their arguments.
FIRE_MODES: dict[str, str] = {
    "off": "never fires (the default for every site)",
    "always": "fires on every hit",
    "once": "fires on the next hit only, then disarms",
    "nth": "fires on the `n`-th hit after arming (1-based), then disarms",
    "probability": "fires with probability `probability` per hit, from a seeded RNG",
}


class FaultInjected(RuntimeError):
    """Raised by :meth:`FailpointRegistry.hit` when a failpoint fires.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: when the
    fault surfaces through a request path it classifies as ``internal``,
    exactly like the unexpected failure it simulates.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at failpoint {site!r}")
        self.site = site


@dataclass
class _Arming:
    """One site's active configuration (internal)."""

    mode: str
    n: int = 0
    probability: float = 0.0
    rng: random.Random | None = None
    hits: int = 0
    fired: int = 0


class FailpointRegistry:
    """The process-wide failpoint switchboard.

    Thread-safe: ``hit()`` is called from tenant worker threads and the
    event loop alike.  Sites not armed cost one lock-free dict lookup.
    """

    def __init__(self, env: str | None = None, seed: int | None = None) -> None:
        self._armed: dict[str, _Arming] = {}
        self._lock = threading.Lock()
        self._seed = 0 if seed is None else int(seed)
        if env:
            self.load_env(env)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(
        self,
        site: str,
        mode: str,
        *,
        n: int | None = None,
        probability: float | None = None,
        seed: int | None = None,
    ) -> None:
        """Arm (or disarm) one site.  Unknown sites and modes raise."""
        if site not in FAILPOINT_SITES:
            raise ConfigurationError(
                f"unknown failpoint site {site!r}; known sites: "
                f"{sorted(FAILPOINT_SITES)}"
            )
        if mode not in FIRE_MODES:
            raise ConfigurationError(
                f"unknown failpoint mode {mode!r}; known modes: {sorted(FIRE_MODES)}"
            )
        with self._lock:
            if mode == "off":
                self._armed.pop(site, None)
                return
            arming = _Arming(mode=mode)
            if mode == "nth":
                if n is None or int(n) < 1:
                    raise ConfigurationError(
                        "failpoint mode 'nth' needs n >= 1 (the hit that fires)"
                    )
                arming.n = int(n)
            elif mode == "probability":
                if probability is None or not 0.0 <= float(probability) <= 1.0:
                    raise ConfigurationError(
                        "failpoint mode 'probability' needs probability in [0, 1]"
                    )
                arming.probability = float(probability)
                arming.rng = random.Random(
                    self._seed if seed is None else int(seed)
                )
            self._armed[site] = arming

    def reset(self, site: str | None = None) -> None:
        """Disarm one site, or every site when ``site`` is omitted."""
        if site is not None and site not in FAILPOINT_SITES:
            raise ConfigurationError(
                f"unknown failpoint site {site!r}; known sites: "
                f"{sorted(FAILPOINT_SITES)}"
            )
        with self._lock:
            if site is None:
                self._armed.clear()
            else:
                self._armed.pop(site, None)

    def load_env(self, text: str) -> None:
        """Parse a ``site=mode[:arg]`` comma-list (the ``REPRO_FAULT`` format).

        Examples: ``"wal_append=once"``, ``"tenant_worker=nth:3"``,
        ``"socket_write=probability:0.2,solver_call=always"``.
        """
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ConfigurationError(
                    f"malformed REPRO_FAULT entry {entry!r}; expected site=mode[:arg]"
                )
            site, _, spec = entry.partition("=")
            mode, _, arg = spec.partition(":")
            kwargs: dict[str, Any] = {}
            try:
                if mode == "nth":
                    kwargs["n"] = int(arg)
                elif mode == "probability":
                    kwargs["probability"] = float(arg)
                elif arg:
                    raise ValueError(f"mode {mode!r} takes no argument")
            except ValueError as exc:
                raise ConfigurationError(
                    f"malformed REPRO_FAULT entry {entry!r}: {exc}"
                ) from None
            self.configure(site.strip(), mode.strip(), **kwargs)

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def hit(self, site: str) -> None:
        """Mark one pass through ``site``; raises :class:`FaultInjected`
        when the site's armed mode says this hit fires."""
        arming = self._armed.get(site)
        if arming is None:
            return
        with self._lock:
            arming = self._armed.get(site)
            if arming is None:
                return
            arming.hits += 1
            if arming.mode == "always":
                fire = True
            elif arming.mode == "once":
                fire = True
                del self._armed[site]
            elif arming.mode == "nth":
                fire = arming.hits == arming.n
                if fire:
                    del self._armed[site]
            else:  # probability
                fire = arming.rng.random() < arming.probability
            if not fire:
                return
            arming.fired += 1
        registry = get_registry()
        registry.counter("fault.injections", "failpoint firings, all sites").inc()
        registry.counter(
            f"fault.{site}.injections", "failpoint firings at this site"
        ).inc()
        raise FaultInjected(site)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """JSON-serialisable state of every site (the ``fault`` response)."""
        with self._lock:
            armed = {site: arming for site, arming in self._armed.items()}
        body: dict[str, Any] = {}
        for site, description in FAILPOINT_SITES.items():
            arming = armed.get(site)
            entry: dict[str, Any] = {
                "description": description,
                "mode": arming.mode if arming is not None else "off",
            }
            if arming is not None:
                entry["hits"] = arming.hits
                entry["fired"] = arming.fired
                if arming.mode == "nth":
                    entry["n"] = arming.n
                if arming.mode == "probability":
                    entry["probability"] = arming.probability
            body[site] = entry
        return body


_FAILPOINTS: FailpointRegistry | None = None
_FAILPOINTS_LOCK = threading.Lock()


def get_failpoints() -> FailpointRegistry:
    """The process-global registry, armed from ``REPRO_FAULT`` on first use."""
    global _FAILPOINTS
    if _FAILPOINTS is None:
        with _FAILPOINTS_LOCK:
            if _FAILPOINTS is None:
                seed_text = os.environ.get("REPRO_FAULT_SEED")
                _FAILPOINTS = FailpointRegistry(
                    env=os.environ.get("REPRO_FAULT"),
                    seed=int(seed_text) if seed_text else None,
                )
    return _FAILPOINTS
