"""Shared process-pool plumbing for the parallel entry points.

Every fan-out in this package — score shards, portfolio members,
experiment trials, method comparisons — uses the same recipe: a
:class:`~concurrent.futures.ProcessPoolExecutor` on the fork context
where available (so the NumPy-heavy parent is inherited instead of
re-imported), sized to ``min(workers, tasks)``, collecting results in
submission order.  This module is that recipe, written once.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

__all__ = ["pool_context", "pool_map"]

T = TypeVar("T")


def pool_context() -> Any:
    """The multiprocessing context for worker pools (fork when available)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def pool_map(
    fn: Callable[[Any], T], payloads: Sequence[Any], workers: int
) -> list[T]:
    """Run ``fn`` over ``payloads`` in worker processes, preserving order.

    ``fn`` and every payload must be picklable.  The pool is sized to
    ``min(workers, len(payloads))`` and torn down before returning.
    """
    with ProcessPoolExecutor(
        max_workers=min(workers, len(payloads)), mp_context=pool_context()
    ) as pool:
        return list(pool.map(fn, payloads))
