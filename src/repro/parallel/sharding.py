"""Sharded construction of the dense ``(R, P)`` score matrix.

The naive vectorised kernel of :meth:`ScoringFunction.score_matrix`
broadcasts to a full ``(R, P, T)`` intermediate before reducing over the
topic axis.  At service scale (thousands of reviewers and papers) that
intermediate no longer fits in cache — a 2000×1000×30 problem allocates
~480 MB just to throw it away — and the kernel becomes memory-bound.

This module replaces it with two nested levels of decomposition:

1. the **reviewer axis** is cut into contiguous shards, each scored by one
   worker process (score cells are independent across reviewers, so shards
   compose by row concatenation — bitwise-exactly);
2. inside every shard the **paper axis** is walked in small blocks so the
   ``(R_shard, paper_block, T)`` intermediate stays cache-sized.

Both levels preserve bitwise equality with the serial kernel: every score
cell is computed by the same elementwise ``topic_contribution`` followed
by the same reduction over the intact topic axis, in the same order.  The
per-topic contribution of a :class:`ScoringFunction` is elementwise by
contract (see :mod:`repro.core.scoring`), which is exactly the property
that makes the decomposition exact.

Workers receive ``(scoring, reviewer_shard, paper_matrix)`` by pickling;
scoring functions are stateless singletons, so the payload is dominated by
the two small ``(·, T)`` input matrices, not by the ``(R, P)`` output.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import ScoringFunction
from repro.exceptions import DimensionMismatchError
from repro.obs.trace import get_tracer
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import pool_map

TRACER = get_tracer()

__all__ = [
    "blocked_score_matrix",
    "score_appended_columns",
    "sharded_score_matrix",
]


def blocked_score_matrix(
    scoring: ScoringFunction,
    reviewer_matrix: np.ndarray,
    paper_matrix: np.ndarray,
    paper_block: int = 64,
    paper_totals: np.ndarray | None = None,
) -> np.ndarray:
    """Serial, cache-blocked equivalent of :meth:`ScoringFunction.score_matrix`.

    Walks the paper axis in blocks of ``paper_block`` columns so the
    broadcast intermediate is ``(R, paper_block, T)`` instead of
    ``(R, P, T)``.  The result is bitwise-identical to the naive kernel:
    the topic axis — the only axis that is reduced — is never split.

    ``paper_totals`` optionally supplies the precomputed per-paper topic
    masses (``paper_matrix.sum(axis=1)``) so callers that already hold them
    — a :class:`~repro.core.dense.DenseProblem`, or the sharded builder
    fanning one computation out to every worker — don't re-derive them per
    call.
    """
    reviewer_matrix = np.asarray(reviewer_matrix, dtype=np.float64)
    paper_matrix = np.asarray(paper_matrix, dtype=np.float64)
    if reviewer_matrix.shape[1] != paper_matrix.shape[1]:
        raise DimensionMismatchError(
            "reviewer and paper matrices must agree on the number of topics"
        )
    num_reviewers = reviewer_matrix.shape[0]
    num_papers = paper_matrix.shape[0]
    denominators = (
        paper_matrix.sum(axis=1) if paper_totals is None else paper_totals
    )
    safe = np.where(denominators > 0.0, denominators, 1.0)
    scores = np.empty((num_reviewers, num_papers), dtype=np.float64)
    for start in range(0, num_papers, paper_block):
        stop = min(start + paper_block, num_papers)
        scores[:, start:stop] = scoring.score_block(
            reviewer_matrix, paper_matrix[start:stop], safe[start:stop]
        )
    scores[:, denominators <= 0.0] = 0.0
    return scores


def score_appended_columns(
    scoring: ScoringFunction,
    reviewer_matrix: np.ndarray,
    new_papers: np.ndarray,
    config: ParallelConfig | None = None,
) -> np.ndarray:
    """Score only the appended paper columns of a delta-repaired matrix.

    The delta-maintenance layer (:mod:`repro.core.delta`, the engine's
    :class:`~repro.service.cache.ScoreMatrixCache`) repairs a resident
    ``(R, P)`` matrix by scoring just the late papers' columns — ``R * K``
    cells for ``K`` new papers instead of ``R * (P + K)``.  This is the
    one entry point for that repair: the serial path runs the cache-blocked
    kernel (bitwise-identical to the naive broadcast, and it never
    materialises an ``(R, K, T)`` intermediate larger than a block), and a
    :class:`~repro.parallel.ParallelConfig` routes repairs that clear its
    serial threshold — bulk adds against very large reviewer pools —
    through the sharded worker pool, equally bitwise-identical.
    """
    new_papers = np.asarray(new_papers, dtype=np.float64)
    if config is not None:
        return sharded_score_matrix(scoring, reviewer_matrix, new_papers, config)
    if new_papers.shape[0] <= 64:
        # Up to one block the naive kernel *is* the blocked kernel (same
        # single broadcast); keep the exact historical call shape so
        # instrumented callers observe one ``score_matrix`` per repair.
        return scoring.score_matrix(reviewer_matrix, new_papers)
    return blocked_score_matrix(scoring, reviewer_matrix, new_papers)


def _score_shard_job(
    payload: tuple[ScoringFunction, np.ndarray, np.ndarray, int, np.ndarray],
) -> np.ndarray:
    """Worker entry point: score one reviewer shard against all papers."""
    scoring, reviewer_shard, paper_matrix, paper_block, paper_totals = payload
    return blocked_score_matrix(
        scoring, reviewer_shard, paper_matrix, paper_block, paper_totals
    )


def sharded_score_matrix(
    scoring: ScoringFunction,
    reviewer_matrix: np.ndarray,
    paper_matrix: np.ndarray,
    config: ParallelConfig | None = None,
    paper_totals: np.ndarray | None = None,
) -> np.ndarray:
    """Build the ``(R, P)`` score matrix, fanning reviewer shards out.

    Dispatch policy (in order):

    * fewer than ``config.serial_threshold`` score cells — call the exact
      serial :meth:`ScoringFunction.score_matrix`, so small problems keep
      their current behaviour to the last bit and never pay pool overhead;
    * one resolved worker — the cache-blocked serial kernel (bitwise equal,
      no processes);
    * otherwise — a :class:`~concurrent.futures.ProcessPoolExecutor` scores
      one reviewer shard per task and the rows are concatenated in shard
      order.

    The result is bitwise-identical across all three paths for every
    scoring function whose ``topic_contribution`` is elementwise (which the
    registry contract requires).
    """
    reviewer_matrix = np.asarray(reviewer_matrix, dtype=np.float64)
    paper_matrix = np.asarray(paper_matrix, dtype=np.float64)
    if reviewer_matrix.shape[1] != paper_matrix.shape[1]:
        raise DimensionMismatchError(
            "reviewer and paper matrices must agree on the number of topics"
        )
    config = config if config is not None else ParallelConfig()
    cells = int(reviewer_matrix.shape[0]) * int(paper_matrix.shape[0])
    if cells < config.serial_threshold:
        return scoring.score_matrix(reviewer_matrix, paper_matrix)
    # The per-paper topic masses are shared by every shard: compute them
    # once here (or accept a dense view's precomputed array) instead of
    # once per worker.
    if paper_totals is None:
        paper_totals = paper_matrix.sum(axis=1)
    bounds = config.shard_bounds(reviewer_matrix.shape[0])
    if not config.should_parallelise(cells) or len(bounds) <= 1:
        return blocked_score_matrix(
            scoring, reviewer_matrix, paper_matrix, config.paper_block, paper_totals
        )
    payloads = [
        (
            scoring,
            reviewer_matrix[start:stop],
            paper_matrix,
            config.paper_block,
            paper_totals,
        )
        for start, stop in bounds
    ]
    with TRACER.span(
        "parallel.score_shards",
        shards=len(payloads),
        workers=config.resolved_workers(),
    ):
        shards = pool_map(_score_shard_job, payloads, config.resolved_workers())
        return np.concatenate(shards, axis=0)
