"""Configuration of the worker-pool execution layer.

One frozen dataclass, :class:`ParallelConfig`, describes *how much*
parallelism a caller wants; every parallel entry point
(:func:`~repro.parallel.sharding.sharded_score_matrix`,
:func:`~repro.parallel.portfolio.run_portfolio`,
:func:`~repro.parallel.trials.run_trials`) accepts one and the serving
stack (:class:`~repro.service.engine.AssignmentEngine`,
:class:`~repro.service.cache.ScoreMatrixCache`) threads it down to the
score-matrix kernel.

The config deliberately separates two orthogonal levers:

* ``workers`` — how many OS processes may run at once (``0`` means "one
  per CPU core");
* ``serial_threshold`` — below this many ``R * P`` score cells the
  parallel layer steps aside entirely and the *current exact serial code
  path* runs, so small problems keep their behaviour (and their speed:
  forking a pool for a 60×25 conference would be pure overhead).

Example::

    >>> from repro.parallel import ParallelConfig
    >>> ParallelConfig(workers=4).resolved_workers()
    4
    >>> ParallelConfig(workers=1).should_parallelise(10**9)
    False
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["ParallelConfig", "DEFAULT_SERIAL_THRESHOLD"]

#: Below this many ``R * P`` score cells the serial path is always used.
#: 200k cells is roughly a 450x450 problem — well above every workload of
#: the paper's Table 3 at default scale, and far below the service-scale
#: matrices the sharded kernel is built for.
DEFAULT_SERIAL_THRESHOLD = 200_000


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the worker-pool execution layer.

    Attributes
    ----------
    workers:
        Maximum worker processes.  ``0`` resolves to ``os.cpu_count()``;
        ``1`` disables multiprocessing (but large score matrices still use
        the cache-blocked serial kernel, which is bitwise-identical to and
        much faster than the naive broadcast).
    shard_size:
        Reviewers per worker shard for score-matrix construction.  ``None``
        splits the reviewer axis evenly across the resolved workers.
    paper_block:
        Papers per cache-friendly block inside one shard.  Each block
        materialises an ``(R_shard, paper_block, T)`` intermediate, so the
        default keeps the working set near L2-cache size instead of
        allocating the full ``(R, P, T)`` broadcast at once.
    serial_threshold:
        Problems with fewer than this many ``R * P`` score cells bypass the
        parallel layer completely and run the exact serial code path.
    """

    workers: int = 0
    shard_size: int | None = None
    paper_block: int = 64
    serial_threshold: int = DEFAULT_SERIAL_THRESHOLD

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError("workers must be >= 0 (0 means one per CPU core)")
        if self.shard_size is not None and self.shard_size < 1:
            raise ConfigurationError("shard_size must be at least 1")
        if self.paper_block < 1:
            raise ConfigurationError("paper_block must be at least 1")
        if self.serial_threshold < 0:
            raise ConfigurationError("serial_threshold must be >= 0")

    def resolved_workers(self) -> int:
        """The concrete worker count (``0`` resolved against the host)."""
        if self.workers > 0:
            return self.workers
        return max(1, os.cpu_count() or 1)

    def should_parallelise(self, cells: int) -> bool:
        """Whether a problem of ``cells = R * P`` score cells leaves the
        exact serial path."""
        return self.resolved_workers() > 1 and cells >= self.serial_threshold

    def shard_bounds(self, num_rows: int) -> list[tuple[int, int]]:
        """Contiguous ``[start, stop)`` row ranges covering ``num_rows``.

        The reviewer axis is cut into at most ``resolved_workers()`` shards
        (or ``ceil(num_rows / shard_size)`` when ``shard_size`` is set);
        concatenating the per-shard results in bound order reproduces the
        full matrix row-for-row.
        """
        if num_rows <= 0:
            return []
        if self.shard_size is not None:
            size = self.shard_size
        else:
            size = -(-num_rows // self.resolved_workers())  # ceil division
        size = max(1, min(size, num_rows))
        return [(start, min(start + size, num_rows)) for start in range(0, num_rows, size)]
