"""Deterministic fan-out of independent experiment trials.

The experiment sweeps and benchmark harness run many *independent* trials
— same procedure, different seed — and today they run them one after the
other.  This module fans them out across worker processes while keeping
the one property an experiment harness cannot lose: **seed-for-seed
reproducibility**.  ``run_trials(trial, seeds, config)`` returns exactly
the list ``[trial(seed) for seed in seeds]`` would, whatever the worker
count, because

* per-trial seeds are derived *before* dispatch with
  :func:`trial_seeds` (a :class:`numpy.random.SeedSequence` spawn, so
  trials are statistically independent and the derivation is stable
  across platforms and worker counts), and
* results are collected in submission order (``ProcessPoolExecutor.map``
  preserves it), never in completion order.

The ``trial`` callable must be picklable (a module-level function) and
must derive *all* of its randomness from the seed argument.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any, TypeVar

import numpy as np

from repro.exceptions import ConfigurationError
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import pool_map

__all__ = ["trial_seeds", "run_trials"]

T = TypeVar("T")


def trial_seeds(base_seed: int, num_trials: int) -> tuple[int, ...]:
    """Derive ``num_trials`` independent, stable per-trial seeds.

    The derivation is a pure function of ``(base_seed, index)``: the same
    base seed always yields the same seed list, regardless of how many
    workers later consume it.
    """
    if num_trials < 0:
        raise ConfigurationError("num_trials must be >= 0")
    children = np.random.SeedSequence(base_seed).spawn(num_trials)
    return tuple(int(child.generate_state(1, dtype=np.uint64)[0]) for child in children)


def _trial_job(payload: tuple[Callable[[int], Any], int]) -> Any:
    """Worker entry point: run one seeded trial."""
    trial, seed = payload
    return trial(seed)


def run_trials(
    trial: Callable[[int], T],
    seeds: Sequence[int] | None = None,
    num_trials: int | None = None,
    base_seed: int = 0,
    config: ParallelConfig | None = None,
) -> list[T]:
    """Run ``trial(seed)`` for every seed, possibly across workers.

    Parameters
    ----------
    trial:
        Module-level callable taking one integer seed.  All of the trial's
        randomness must flow from that seed.
    seeds:
        Explicit seed list; mutually exclusive with ``num_trials``.
    num_trials:
        Derive this many seeds from ``base_seed`` via :func:`trial_seeds`.
    base_seed:
        Root of the seed derivation when ``num_trials`` is used.
    config:
        Parallelism knobs; ``None`` or one resolved worker runs the plain
        serial loop.

    Returns
    -------
    list
        Trial results in seed order — identical for every worker count.
    """
    if (seeds is None) == (num_trials is None):
        raise ConfigurationError("pass exactly one of 'seeds' or 'num_trials'")
    if seeds is None:
        assert num_trials is not None
        seeds = trial_seeds(base_seed, num_trials)
    seeds = list(seeds)
    workers = config.resolved_workers() if config is not None else 1
    if workers <= 1 or len(seeds) <= 1:
        return [trial(seed) for seed in seeds]
    return pool_map(_trial_job, [(trial, seed) for seed in seeds], workers)
