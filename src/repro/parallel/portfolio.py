"""Solver portfolio: race several CRA solvers, keep the best assignment.

No single conference solver dominates every instance: SDGA-SRA usually
wins on quality but its stochastic refinement costs time, plain SDGA is
fast with a 1/2-guarantee, Greedy is faster still with a 1/3-guarantee.
A *portfolio* runs several registered solvers on the same problem — in
worker processes when the config allows — and returns the best-scoring
feasible assignment found before the deadline.

Solvers are shipped to workers by name (resolved through the registry of
:mod:`repro.service.registry` inside the worker) and problems travel as
their JSON dict form from :mod:`repro.data.io`, which sidesteps pickling
the problem's mutation listeners (live engines register closures on their
problem; closures do not pickle).

A deadline turns the race into anytime optimisation: solvers that finish
in time compete on score, solvers that do not are recorded with status
``"timeout"``.  At least one entry always runs to completion in serial
mode, so a too-tight deadline degrades to "fastest solver wins" instead
of failing.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any

from repro.core.problem import WGRAPProblem
from repro.cra.base import CRAResult
from repro.exceptions import ConfigurationError, SolverError
from repro.obs.trace import get_tracer
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import pool_context

TRACER = get_tracer()

__all__ = [
    "DEFAULT_PORTFOLIO",
    "PortfolioEntry",
    "PortfolioOutcome",
    "full_portfolio",
    "run_portfolio",
]

#: Default line-up: the paper's best method, its deterministic backbone
#: and the fast 1/3-approximation baseline.
DEFAULT_PORTFOLIO: tuple[str, ...] = ("SDGA-SRA", "SDGA", "Greedy")


def full_portfolio() -> tuple[str, ...]:
    """Every registered CRA solver that is safe to race.

    The line-up is read from the live solver registry, so a newly
    registered solver joins the race without this module changing; only
    solvers tagged ``"exponential"`` (Exhaustive, the pairwise ILP) are
    excluded — a deadline cannot rescue a serial race from a member that
    may never finish.  Resolvable everywhere a solver list is accepted via
    the pseudo-name ``"all"`` (CLI ``--portfolio all``, the ``portfolio``
    request kind, :meth:`AssignmentEngine.solve_portfolio
    <repro.service.engine.AssignmentEngine.solve_portfolio>`).

    Note that the line-up includes ``Bid-SDGA``, whose bid matrix is
    empty unless the race's ``options`` carry ``bids`` triples (options
    are forwarded to every factory) — with no bids its solve degenerates
    to plain SDGA's stage problems, so pass bids when they exist or trim
    the line-up when racing under a tight serial deadline.
    """
    from repro.service.registry import available_solver_specs

    return tuple(
        spec.name
        for spec in available_solver_specs("cra")
        if "exponential" not in spec.tags
    )


@dataclass(frozen=True)
class PortfolioEntry:
    """How one portfolio member fared.

    ``status`` is ``"ok"`` (finished, scored), ``"timeout"`` (deadline
    expired first) or ``"error"`` (the solver raised; message in
    ``error``).  ``result`` is populated only for ``"ok"`` entries.
    """

    solver: str
    status: str
    score: float | None = None
    elapsed_seconds: float | None = None
    error: str | None = None
    result: CRAResult | None = None

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable summary (the assignment itself is omitted)."""
        payload: dict[str, Any] = {"solver": self.solver, "status": self.status}
        if self.score is not None:
            payload["score"] = self.score
        if self.elapsed_seconds is not None:
            payload["elapsed_seconds"] = self.elapsed_seconds
        if self.error is not None:
            payload["error"] = self.error
        return payload


@dataclass(frozen=True)
class PortfolioOutcome:
    """Result of one portfolio race.

    ``best`` is the highest-scoring finished result (ties broken by
    line-up order, so outcomes are deterministic); ``entries`` records
    every member in line-up order.
    """

    best: CRAResult
    entries: tuple[PortfolioEntry, ...]
    elapsed_seconds: float

    @property
    def best_solver(self) -> str:
        """Canonical name of the winning solver."""
        return self.best.solver_name

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable summary for the serving front end."""
        return {
            "best_solver": self.best_solver,
            "best_score": self.best.score,
            "elapsed_seconds": self.elapsed_seconds,
            "entries": [entry.to_payload() for entry in self.entries],
        }


def _canonical_lineup(solvers: tuple[str, ...] | list[str]) -> list[str]:
    """Resolve, canonicalise and dedupe the requested solver names.

    The pseudo-name ``"all"`` expands in place to :func:`full_portfolio`
    (the whole registry minus the exponential-time members).
    """
    from repro.service.registry import solver_spec

    lineup: list[str] = []
    for name in solvers:
        expanded = (
            full_portfolio() if name.strip().lower() == "all" else (name,)
        )
        for member in expanded:
            canonical = solver_spec("cra", member).name
            if canonical not in lineup:
                lineup.append(canonical)
    if not lineup:
        raise ConfigurationError("a portfolio needs at least one solver")
    return lineup


def _portfolio_job(
    payload: tuple[dict[str, Any], str, dict[str, Any]],
) -> CRAResult:
    """Worker entry point: rebuild the problem, run one named solver."""
    from repro.data.io import problem_from_dict
    from repro.service.registry import create_solver

    problem_payload, name, options = payload
    problem = problem_from_dict(problem_payload)
    solver = create_solver("cra", name, **options)
    return solver.solve(problem)


def _solve_in_process(
    problem: WGRAPProblem, name: str, options: dict[str, Any]
) -> CRAResult:
    from repro.service.registry import create_solver

    return create_solver("cra", name, **options).solve(problem)


def _pick_best(entries: list[PortfolioEntry], started: float) -> PortfolioOutcome:
    finished = [entry for entry in entries if entry.status == "ok"]
    if not finished:
        details = "; ".join(
            f"{entry.solver}: {entry.status}"
            + (f" ({entry.error})" if entry.error else "")
            for entry in entries
        )
        raise SolverError(f"no portfolio member produced a feasible assignment — {details}")
    best = max(finished, key=lambda entry: entry.score or float("-inf"))
    assert best.result is not None
    return PortfolioOutcome(
        best=best.result,
        entries=tuple(entries),
        elapsed_seconds=time.perf_counter() - started,
    )


def _run_serial(
    problem: WGRAPProblem,
    lineup: list[str],
    deadline: float | None,
    options: dict[str, Any],
    started: float,
) -> PortfolioOutcome:
    entries: list[PortfolioEntry] = []
    for position, name in enumerate(lineup):
        remaining = None if deadline is None else deadline - (time.perf_counter() - started)
        if position > 0 and remaining is not None and remaining <= 0.0:
            entries.append(PortfolioEntry(solver=name, status="timeout"))
            continue
        try:
            result = _solve_in_process(problem, name, options)
        except Exception as exc:  # solver bugs must not sink the race
            entries.append(PortfolioEntry(solver=name, status="error", error=str(exc)))
            continue
        entries.append(
            PortfolioEntry(
                solver=name,
                status="ok",
                score=result.score,
                elapsed_seconds=result.elapsed_seconds,
                result=result,
            )
        )
    return _pick_best(entries, started)


def _run_processes(
    problem: WGRAPProblem,
    lineup: list[str],
    deadline: float | None,
    options: dict[str, Any],
    workers: int,
    started: float,
) -> PortfolioOutcome:
    from repro.data.io import problem_to_dict

    problem_payload = problem_to_dict(problem)
    executor = ProcessPoolExecutor(
        max_workers=min(workers, len(lineup)), mp_context=pool_context()
    )
    futures = {
        name: executor.submit(_portfolio_job, (problem_payload, name, options))
        for name in lineup
    }
    # The deadline is a wall-clock budget from the start of the race, so
    # serialisation and pool start-up count against it.
    remaining = (
        None if deadline is None else max(0.0, deadline - (time.perf_counter() - started))
    )
    wait(list(futures.values()), timeout=remaining)
    entries: list[PortfolioEntry] = []
    unfinished = False
    for name in lineup:
        future = futures[name]
        if not future.done():
            unfinished = True
            entries.append(PortfolioEntry(solver=name, status="timeout"))
            continue
        try:
            result = future.result()
        except Exception as exc:
            entries.append(PortfolioEntry(solver=name, status="error", error=str(exc)))
            continue
        entries.append(
            PortfolioEntry(
                solver=name,
                status="ok",
                score=result.score,
                elapsed_seconds=result.elapsed_seconds,
                result=result,
            )
        )
    if unfinished:
        # Abandon the stragglers: cancel queued tasks and terminate the
        # worker processes so a blown deadline never blocks shutdown.
        executor.shutdown(wait=False, cancel_futures=True)
        try:
            for process in list(getattr(executor, "_processes", {}).values()):
                process.terminate()
        except Exception:
            pass
    else:
        executor.shutdown(wait=True)
    return _pick_best(entries, started)


def run_portfolio(
    problem: WGRAPProblem,
    solvers: tuple[str, ...] | list[str] = DEFAULT_PORTFOLIO,
    deadline: float | None = None,
    config: ParallelConfig | None = None,
    **options: Any,
) -> PortfolioOutcome:
    """Race several registered CRA solvers on one problem.

    Parameters
    ----------
    problem:
        The conference instance to solve.
    solvers:
        Registry names (canonicalised and deduped; order is the
        tie-breaking order).
    deadline:
        Optional wall-clock budget in seconds.  With worker processes the
        solvers genuinely race and stragglers are abandoned; in serial
        mode the line-up is walked in order and members whose turn comes
        after the budget is spent are skipped.  The first member always
        runs in serial mode, so a result is produced whenever any solver
        can finish at all.
    config:
        Parallelism knobs; ``workers`` decides between the serial walk and
        the process race.  ``None`` means serial.
    options:
        Forwarded to every solver factory (factories ignore options they
        do not understand, so one blob configures the whole line-up).

    Raises
    ------
    SolverError
        When no member produced a feasible assignment.
    """
    if deadline is not None and deadline <= 0.0:
        raise ConfigurationError("deadline must be positive")
    lineup = _canonical_lineup(tuple(solvers))
    started = time.perf_counter()
    workers = config.resolved_workers() if config is not None else 1
    with TRACER.span(
        "portfolio.race",
        lineup=",".join(lineup),
        workers=workers,
    ) as race_span:
        if workers <= 1 or len(lineup) == 1:
            outcome = _run_serial(problem, lineup, deadline, options, started)
        else:
            outcome = _run_processes(problem, lineup, deadline, options, workers, started)
        race_span.set(best=outcome.best_solver)
        return outcome
