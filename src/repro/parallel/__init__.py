"""Worker-pool execution layer.

Everything below this package runs on one core; everything above it can
choose not to.  Three independent multipliers live here, all configured by
one :class:`~repro.parallel.config.ParallelConfig`:

* :mod:`repro.parallel.sharding` — sharded construction of the dense
  ``(R, P)`` score matrix: the reviewer axis is split across worker
  processes and each shard is computed with a cache-blocked kernel, so the
  result is **bitwise-identical** to the serial path while avoiding the
  full ``(R, P, T)`` broadcast intermediate.  Wired into
  :meth:`ScoringFunction.score_matrix <repro.core.scoring.ScoringFunction.score_matrix>`,
  :class:`~repro.service.cache.ScoreMatrixCache` and
  :class:`~repro.service.engine.AssignmentEngine`.
* :mod:`repro.parallel.portfolio` — a solver portfolio that races several
  registered CRA solvers on the same problem under an optional deadline
  and returns the best-scoring feasible assignment.
* :mod:`repro.parallel.trials` — a deterministic fan-out driver for
  independent experiment trials with stable per-trial seed derivation
  (parallel runs reproduce serial runs seed-for-seed).

Small problems never pay for any of this: below the config's
``serial_threshold`` the exact serial code paths run unchanged.

See ``docs/parallel.md`` for the architecture discussion and
``examples/parallel_portfolio.py`` for a runnable tour.
"""

from repro.parallel.config import DEFAULT_SERIAL_THRESHOLD, ParallelConfig
from repro.parallel.portfolio import (
    DEFAULT_PORTFOLIO,
    full_portfolio,
    PortfolioEntry,
    PortfolioOutcome,
    run_portfolio,
)
from repro.parallel.sharding import blocked_score_matrix, sharded_score_matrix
from repro.parallel.trials import run_trials, trial_seeds

__all__ = [
    "ParallelConfig",
    "DEFAULT_SERIAL_THRESHOLD",
    "DEFAULT_PORTFOLIO",
    "full_portfolio",
    "PortfolioEntry",
    "PortfolioOutcome",
    "run_portfolio",
    "blocked_score_matrix",
    "sharded_score_matrix",
    "run_trials",
    "trial_seeds",
]
