"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from infeasible
problem instances or solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class DimensionMismatchError(ConfigurationError):
    """Two topic vectors (or a vector and a problem) have different sizes."""


class UnsupportedFormatError(ConfigurationError):
    """A persisted payload declares a format this build cannot read.

    Raised *before* any payload field is touched, so an incompatible (or
    future-version) snapshot fails with a structured error naming what
    was loaded, the version found and the version expected — never an
    opaque ``KeyError`` from half-parsed state.
    """

    def __init__(self, what: str, found: object, expected: object) -> None:
        self.what = what
        self.found = found
        self.expected = expected
        super().__init__(
            f"unsupported {what} format version {found!r} (expected {expected!r})"
        )


class InfeasibleProblemError(ReproError):
    """The problem instance admits no feasible assignment.

    Raised, for example, when ``R * delta_r < P * delta_p`` in a WGRAP
    instance, or when conflicts of interest make it impossible to give a
    paper its required number of reviewers.
    """


class InfeasibleAssignmentError(ReproError):
    """An assignment violates the constraints of its problem instance."""


class SolverError(ReproError):
    """A solver failed to produce a result."""


class UnboundedProblemError(SolverError):
    """A linear program is unbounded in the direction of optimization."""


class InfeasibleLinearProgramError(SolverError):
    """A linear program has an empty feasible region."""


class IterationLimitError(SolverError):
    """An iterative solver exceeded its iteration budget before converging."""


class UnknownScoringFunctionError(ConfigurationError, KeyError):
    """A scoring function name was not found in the registry."""


class UnknownSolverError(ConfigurationError, KeyError):
    """A solver name was not found in the solver registry."""


class RequestError(ReproError):
    """A request sent to the assignment-engine front end is malformed."""


class VocabularyError(ReproError):
    """A token or document refers to a word missing from the vocabulary."""
