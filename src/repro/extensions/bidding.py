"""Bid-aware reviewer assignment (the paper's stated future work).

Section 6 of the paper closes with: *"we plan to study alternative RAP
formulations, e.g., where the quality of the assignment depends on both
reviewer relevance to the paper topics and reviewer preferences based on
available bids."*  This module implements that extension.

The combined objective is

.. math::

    c_\\lambda(A) = \\sum_{p} c(\\vec g_p, \\vec p)
                    \\;+\\; \\lambda \\sum_{(r,p) \\in A} b(r, p)

where ``b(r, p) in [0, 1]`` is the reviewer's bid on the paper and
``lambda`` trades topic coverage against preference satisfaction.  The bid
term is *modular* (it decomposes over assignment pairs), and a submodular
function plus a modular function is still submodular, so the Stage
Deepening Greedy Algorithm keeps its approximation guarantee for the
combined objective — the per-stage linear assignment simply maximises the
sum of the coverage marginal gain and the (scaled) bid of each candidate
pair.

Bids that represent conflicts of interest should be declared as conflicts
on the :class:`~repro.core.problem.WGRAPProblem`; a bid of zero simply means
"no preference", not "forbidden".
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.assignment.transportation import solve_capacitated_assignment
from repro.core.assignment import Assignment
from repro.core.problem import WGRAPProblem
from repro.cra.base import CRASolver
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.exceptions import ConfigurationError

__all__ = [
    "BidLevel",
    "BidMatrix",
    "BidAwareObjective",
    "BidAwareSDGASolver",
    "bid_satisfaction",
]


#: conventional conference-management bid levels and their numeric values
BidLevel: dict[str, float] = {
    "eager": 1.0,
    "yes": 0.75,
    "maybe": 0.4,
    "no": 0.0,
}


class BidMatrix:
    """Reviewer bids on papers, as values in ``[0, 1]``.

    Missing entries default to zero ("no preference expressed"), which makes
    it cheap to build the matrix from the sparse bid lists conference
    systems export.
    """

    def __init__(self, bids: Mapping[tuple[str, str], float] | None = None) -> None:
        self._bids: dict[tuple[str, str], float] = {}
        if bids:
            for (reviewer_id, paper_id), value in bids.items():
                self.set(reviewer_id, paper_id, value)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def set(self, reviewer_id: str, paper_id: str, value: float) -> None:
        """Record a bid; values must lie in ``[0, 1]``."""
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError("bid values must lie in [0, 1]")
        if not reviewer_id or not paper_id:
            raise ConfigurationError("bids need non-empty identifiers")
        self._bids[(reviewer_id, paper_id)] = float(value)

    @classmethod
    def from_levels(
        cls, levels: Mapping[tuple[str, str], str], mapping: Mapping[str, float] = BidLevel
    ) -> "BidMatrix":
        """Build a matrix from symbolic bid levels (``"eager"``, ``"yes"``, ...)."""
        bids = cls()
        for (reviewer_id, paper_id), level in levels.items():
            try:
                value = mapping[level.lower()]
            except KeyError:
                raise ConfigurationError(
                    f"unknown bid level {level!r}; known levels: {sorted(mapping)}"
                ) from None
            bids.set(reviewer_id, paper_id, value)
        return bids

    @classmethod
    def random(
        cls,
        problem: WGRAPProblem,
        bid_probability: float = 0.2,
        seed: int | None = 0,
    ) -> "BidMatrix":
        """Synthetic bids correlated with topical fit (for demos and benches).

        Each reviewer bids on roughly ``bid_probability * P`` papers,
        preferring papers they cover well — which is how real bids behave.
        """
        if not 0.0 < bid_probability <= 1.0:
            raise ConfigurationError("bid_probability must lie in (0, 1]")
        rng = np.random.default_rng(seed)
        scores = problem.pair_score_matrix()
        bids = cls()
        papers_per_reviewer = max(1, int(round(bid_probability * problem.num_papers)))
        for reviewer_idx, reviewer_id in enumerate(problem.reviewer_ids):
            preferences = np.argsort(-scores[reviewer_idx])
            chosen = preferences[: papers_per_reviewer * 2]
            picked = rng.choice(
                chosen, size=min(papers_per_reviewer, chosen.size), replace=False
            )
            for paper_idx in picked:
                level = rng.choice([1.0, 0.75, 0.4], p=[0.3, 0.5, 0.2])
                bids.set(reviewer_id, problem.paper_ids[int(paper_idx)], float(level))
        return bids

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, reviewer_id: str, paper_id: str) -> float:
        """The bid of a reviewer on a paper (0 if none was expressed)."""
        return self._bids.get((reviewer_id, paper_id), 0.0)

    def __len__(self) -> int:
        return len(self._bids)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._bids

    def pairs(self) -> Iterable[tuple[str, str, float]]:
        """Iterate over declared ``(reviewer_id, paper_id, value)`` bids."""
        for (reviewer_id, paper_id), value in sorted(self._bids.items()):
            yield reviewer_id, paper_id, value

    def dense(self, problem: WGRAPProblem) -> np.ndarray:
        """The bids as a dense ``(P, R)`` matrix aligned with the problem."""
        matrix = np.zeros((problem.num_papers, problem.num_reviewers), dtype=np.float64)
        for (reviewer_id, paper_id), value in self._bids.items():
            try:
                row = problem.paper_index(paper_id)
                col = problem.reviewer_index(reviewer_id)
            except KeyError:
                continue  # bids on withdrawn papers / former PC members
            matrix[row, col] = value
        return matrix

    def __repr__(self) -> str:
        return f"BidMatrix({len(self._bids)} bids)"


@dataclass(frozen=True)
class BidAwareObjective:
    """The combined coverage + preference objective.

    Attributes
    ----------
    bids:
        The bid matrix.
    tradeoff:
        ``lambda`` — weight of one unit of bid value relative to one unit of
        coverage.  The paper's pure WGRAP is ``tradeoff = 0``.
    """

    bids: BidMatrix
    tradeoff: float = 0.5

    def __post_init__(self) -> None:
        if self.tradeoff < 0:
            raise ConfigurationError("the bid tradeoff (lambda) must be non-negative")

    def coverage_component(self, problem: WGRAPProblem, assignment: Assignment) -> float:
        """The WGRAP coverage part ``c(A)``."""
        return problem.assignment_score(assignment)

    def bid_component(self, assignment: Assignment) -> float:
        """The total bid value of the assigned pairs (unweighted)."""
        return sum(
            self.bids.get(reviewer_id, paper_id)
            for reviewer_id, paper_id in assignment.pairs()
        )

    def value(self, problem: WGRAPProblem, assignment: Assignment) -> float:
        """``c(A) + lambda * sum of assigned bids``."""
        return self.coverage_component(problem, assignment) + self.tradeoff * self.bid_component(
            assignment
        )


class BidAwareSDGASolver(CRASolver):
    """SDGA for the combined coverage + bid objective.

    Identical to :class:`~repro.cra.sdga.StageDeepeningGreedySolver` except
    that every stage's pair profit is the coverage marginal gain *plus*
    ``lambda`` times the pair's bid.  Because the extra term is modular the
    stage problems stay linear assignments and the 1/2 (or ``1 - 1/e``)
    guarantee carries over to the combined objective.

    The returned :class:`~repro.cra.base.CRAResult` reports the plain
    coverage score (so results stay comparable with the other solvers);
    the combined objective value and the bid statistics are in ``stats``.

    Parameters
    ----------
    objective:
        The combined objective; omitted (or with an empty bid matrix) the
        bid term vanishes and the solve degenerates to plain SDGA on the
        same stage problems.
    backend:
        Assignment backend for the per-stage matchings.
    use_dense:
        ``False`` builds the per-stage coverage gains through the SDGA
        object path instead of the compiled
        :meth:`~repro.core.dense.DenseProblem.stage_inputs` kernel; the
        modular bid term is added identically in both paths, so the staged
        matchings — and the assignment — are bitwise-identical (pinned by
        the conformance harness).
    """

    name = "Bid-SDGA"

    def __init__(
        self,
        objective: BidAwareObjective | None = None,
        backend: str = "hungarian",
        use_dense: bool = True,
    ) -> None:
        self._objective = (
            objective if objective is not None else BidAwareObjective(bids=BidMatrix())
        )
        self._backend = backend
        self._use_dense = use_dense

    def _solve(self, problem: WGRAPProblem) -> tuple[Assignment, dict[str, Any]]:
        assignment = Assignment()
        bid_matrix = self._objective.bids.dense(problem)  # (P, R)
        tradeoff = self._objective.tradeoff

        for _ in range(problem.group_size):
            if self._use_dense:
                gains, forbidden, capacities = StageDeepeningGreedySolver._stage_inputs(
                    problem, assignment
                )
            else:
                gains, forbidden, capacities = (
                    StageDeepeningGreedySolver._stage_inputs_object(problem, assignment)
                )
            combined = gains + tradeoff * bid_matrix
            result = solve_capacitated_assignment(
                combined, capacities, forbidden=forbidden, backend=self._backend
            )
            for paper_idx, reviewer_idx in enumerate(result.row_to_col):
                assignment.add(
                    problem.reviewer_ids[reviewer_idx], problem.paper_ids[paper_idx]
                )

        stats: dict[str, Any] = {
            "tradeoff": tradeoff,
            "combined_objective": self._objective.value(problem, assignment),
            "bid_component": self._objective.bid_component(assignment),
            "bid_satisfaction": bid_satisfaction(assignment, self._objective.bids),
        }
        return assignment, stats


def bid_satisfaction(assignment: Assignment, bids: BidMatrix) -> float:
    """Fraction of assigned pairs whose reviewer had expressed a positive bid.

    A simple, widely used health metric for conference assignments: it tells
    the chair how many reviews will land on people who actually asked for
    the paper.
    """
    pairs = list(assignment.pairs())
    if not pairs:
        return 0.0
    positive = sum(1 for reviewer_id, paper_id in pairs if bids.get(reviewer_id, paper_id) > 0)
    return positive / len(pairs)
