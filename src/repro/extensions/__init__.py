"""Extensions beyond the paper's core contribution.

* :mod:`repro.extensions.bidding` — the bid-aware objective the paper lists
  as future work (coverage + reviewer preferences), with an SDGA variant
  that keeps the approximation guarantee.
* :mod:`repro.extensions.incremental` — incremental maintenance of an
  existing assignment (late submissions, reviewer withdrawals).
"""

from repro.extensions.bidding import (
    BidAwareObjective,
    BidAwareSDGASolver,
    BidLevel,
    BidMatrix,
    bid_satisfaction,
)
from repro.extensions.incremental import (
    IncrementalUpdate,
    assign_additional_paper,
    withdraw_reviewer,
)

__all__ = [
    "BidAwareObjective",
    "BidAwareSDGASolver",
    "BidLevel",
    "BidMatrix",
    "bid_satisfaction",
    "IncrementalUpdate",
    "assign_additional_paper",
    "withdraw_reviewer",
]
