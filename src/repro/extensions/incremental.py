"""Incremental maintenance of an existing assignment.

Real review processes are not one-shot: late submissions arrive after the
bulk assignment has been made, and reviewers occasionally drop out.  This
module provides the two corresponding maintenance operations on top of the
WGRAP machinery:

* :func:`assign_additional_paper` — staff a newly arrived submission with
  the reviewers that still have spare capacity, using the exact BBA solver
  (this is exactly the Journal Reviewer Assignment sub-problem of
  Section 3, applied inside a conference).
* :func:`withdraw_reviewer` — remove a reviewer from the pool and re-staff
  the affected papers with a capacitated assignment over the remaining
  spare capacity (the same machinery as an SDGA stage / the repair pass).

Both functions return a *new* problem and a *new* assignment; the inputs
are never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.entities import Paper
from repro.core.problem import JRAProblem, WGRAPProblem
from repro.cra.repair import complete_assignment
from repro.exceptions import ConfigurationError, InfeasibleProblemError
from repro.jra.bba import BranchAndBoundSolver

__all__ = ["IncrementalUpdate", "assign_additional_paper", "withdraw_reviewer"]


@dataclass(frozen=True)
class IncrementalUpdate:
    """Result of an incremental maintenance operation.

    Attributes
    ----------
    problem:
        The updated problem instance (with the paper added or the reviewer
        removed).
    assignment:
        The updated, feasible assignment for that problem.
    affected_papers:
        Papers whose reviewer group changed during the update.
    """

    problem: WGRAPProblem
    assignment: Assignment
    affected_papers: tuple[str, ...]


def assign_additional_paper(
    problem: WGRAPProblem,
    assignment: Assignment,
    paper: Paper,
    reviewer_workload: int | None = None,
) -> IncrementalUpdate:
    """Add a late submission and staff it without touching existing groups.

    Parameters
    ----------
    problem:
        The current problem (the new paper must not already be part of it).
    assignment:
        The current, complete assignment for ``problem``.
    paper:
        The newly arrived submission.
    reviewer_workload:
        Optional new workload bound ``delta_r``; when omitted the existing
        bound is kept, and an :class:`InfeasibleProblemError` is raised if
        the remaining capacity cannot absorb the new paper (the chair must
        then raise the workload explicitly).

    Raises
    ------
    ConfigurationError
        If the paper id already exists in the problem.
    InfeasibleProblemError
        If fewer than ``delta_p`` reviewers have spare capacity.
    """
    if paper.id in problem.paper_ids:
        raise ConfigurationError(f"paper {paper.id!r} is already part of the problem")
    problem.validate_assignment(assignment, require_complete=True)

    workload = reviewer_workload if reviewer_workload is not None else problem.reviewer_workload
    updated_problem = WGRAPProblem(
        papers=[*problem.papers, paper],
        reviewers=problem.reviewers,
        group_size=problem.group_size,
        reviewer_workload=workload,
        conflicts=problem.conflicts,
        scoring=problem.scoring,
        validate_capacity=False,
    )

    exhausted = {
        reviewer_id
        for reviewer_id in problem.reviewer_ids
        if assignment.load(reviewer_id) >= workload
    }
    excluded = exhausted | set(problem.conflicts.reviewers_conflicting_with(paper.id))
    available = problem.num_reviewers - len(excluded)
    if available < problem.group_size:
        raise InfeasibleProblemError(
            f"only {available} reviewers have spare capacity for the new paper; "
            "increase reviewer_workload to absorb it"
        )

    jra = JRAProblem(
        paper=paper,
        reviewers=problem.reviewers,
        group_size=problem.group_size,
        excluded_reviewers=excluded,
        scoring=problem.scoring,
    )
    group = BranchAndBoundSolver().solve(jra)

    updated_assignment = assignment.copy()
    for reviewer_id in group.reviewer_ids:
        updated_assignment.add(reviewer_id, paper.id)
    updated_problem.validate_assignment(updated_assignment, require_complete=True)
    return IncrementalUpdate(
        problem=updated_problem,
        assignment=updated_assignment,
        affected_papers=(paper.id,),
    )


def withdraw_reviewer(
    problem: WGRAPProblem,
    assignment: Assignment,
    reviewer_id: str,
) -> IncrementalUpdate:
    """Remove a reviewer from the pool and re-staff their papers.

    The reviewer's papers keep their other group members; the vacated slots
    are refilled by the repair pass (a capacitated assignment maximising
    marginal coverage, with augmenting swaps if capacity is tight).

    Raises
    ------
    KeyError
        If the reviewer is not part of the problem.
    InfeasibleProblemError
        If the remaining pool cannot cover the vacated slots.
    """
    problem.reviewer_index(reviewer_id)  # raises KeyError for unknown reviewers
    problem.validate_assignment(assignment, require_complete=True)

    affected = tuple(sorted(assignment.papers_of(reviewer_id)))
    remaining_reviewers = [
        reviewer for reviewer in problem.reviewers if reviewer.id != reviewer_id
    ]
    if not remaining_reviewers:
        raise InfeasibleProblemError("cannot withdraw the only reviewer in the pool")

    updated_problem = WGRAPProblem(
        papers=problem.papers,
        reviewers=remaining_reviewers,
        group_size=problem.group_size,
        reviewer_workload=problem.reviewer_workload,
        conflicts=problem.conflicts,
        scoring=problem.scoring,
        validate_capacity=False,
    )

    stripped = Assignment(
        pair for pair in assignment.pairs() if pair[0] != reviewer_id
    )
    repaired = complete_assignment(updated_problem, stripped)
    updated_problem.validate_assignment(repaired, require_complete=True)
    return IncrementalUpdate(
        problem=updated_problem,
        assignment=repaired,
        affected_papers=affected,
    )
