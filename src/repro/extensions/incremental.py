"""Incremental maintenance of an existing assignment.

Real review processes are not one-shot: late submissions arrive after the
bulk assignment has been made, and reviewers occasionally drop out.  This
module provides the two corresponding maintenance operations on top of the
WGRAP machinery:

* :func:`assign_additional_paper` — staff a newly arrived submission with
  the reviewers that still have spare capacity, using the exact BBA solver
  (this is exactly the Journal Reviewer Assignment sub-problem of
  Section 3, applied inside a conference).
* :func:`withdraw_reviewer` — remove a reviewer from the pool and re-staff
  the affected papers with a capacitated assignment over the remaining
  spare capacity (the same machinery as an SDGA stage / the repair pass).

Both operations run *through* a throwaway
:class:`~repro.service.engine.AssignmentEngine`, which applies them as
incremental mutations (one score-matrix column appended, one row dropped)
and reports the resulting delta — so long-running callers get the exact
set of changed pairs instead of having to diff two assignments.  Both
functions return a *new* problem and a *new* assignment; the inputs are
never mutated.

Conflict-version discipline (audited in PR 5, the same staleness class
fixed in the engine's JRA sub-problem cache in PR 4): every cached input
this path consumes is keyed on :attr:`WGRAPProblem.versions
<repro.core.problem.WGRAPProblem.versions>` — the engine validates the
incoming assignment against the *current* conflict version before
mutating (a live ``conflicts.add`` between two incremental calls that
invalidates an assigned pair raises instead of committing), and the
repair's refill inputs read the feasibility mask through
``dense_view()``, which patches pending conflict edits in place before
any slot is filled.  ``tests/test_extensions.py``
(``TestIncrementalConflictVersionStaleness``) pins both behaviours with
conflict edits interleaved between calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.entities import Paper
from repro.core.problem import WGRAPProblem

__all__ = ["IncrementalUpdate", "assign_additional_paper", "withdraw_reviewer"]


@dataclass(frozen=True)
class IncrementalUpdate:
    """Result of an incremental maintenance operation.

    Attributes
    ----------
    problem:
        The updated problem instance (with the paper added or the reviewer
        removed).
    assignment:
        The updated, feasible assignment for that problem.
    affected_papers:
        Papers whose reviewer group changed during the update.
    added_pairs:
        ``(reviewer_id, paper_id)`` pairs present after but not before.
    removed_pairs:
        ``(reviewer_id, paper_id)`` pairs present before but not after.
    """

    problem: WGRAPProblem
    assignment: Assignment
    affected_papers: tuple[str, ...]
    added_pairs: tuple[tuple[str, str], ...] = ()
    removed_pairs: tuple[tuple[str, str], ...] = ()


def _run_through_engine(problem: WGRAPProblem, assignment: Assignment, operation):
    """Apply one mutation via a throwaway engine and wrap its delta.

    The engine copies the assignment and derives a fresh problem, so the
    caller's objects are never touched; detaching afterwards keeps the
    caller's problem free of dangling mutation listeners.
    """
    from repro.service.engine import AssignmentEngine

    engine = AssignmentEngine(problem, assignment=assignment)
    try:
        delta = operation(engine)
    finally:
        engine.detach()
    return IncrementalUpdate(
        problem=delta.problem,
        assignment=delta.assignment,
        affected_papers=delta.affected_papers,
        added_pairs=delta.added_pairs,
        removed_pairs=delta.removed_pairs,
    )


def assign_additional_paper(
    problem: WGRAPProblem,
    assignment: Assignment,
    paper: Paper,
    reviewer_workload: int | None = None,
) -> IncrementalUpdate:
    """Add a late submission and staff it without touching existing groups.

    Parameters
    ----------
    problem:
        The current problem (the new paper must not already be part of it).
    assignment:
        The current, complete assignment for ``problem``.
    paper:
        The newly arrived submission.
    reviewer_workload:
        Optional new workload bound ``delta_r``; when omitted the existing
        bound is kept, and an :class:`InfeasibleProblemError` is raised if
        the remaining capacity cannot absorb the new paper (the chair must
        then raise the workload explicitly).

    Raises
    ------
    ConfigurationError
        If the paper id already exists in the problem.
    InfeasibleProblemError
        If fewer than ``delta_p`` reviewers have spare capacity.
    """
    return _run_through_engine(
        problem,
        assignment,
        lambda engine: engine.add_paper(paper, reviewer_workload=reviewer_workload),
    )


def withdraw_reviewer(
    problem: WGRAPProblem,
    assignment: Assignment,
    reviewer_id: str,
) -> IncrementalUpdate:
    """Remove a reviewer from the pool and re-staff their papers.

    The reviewer's papers keep their other group members; the vacated slots
    are refilled by the repair pass (a capacitated assignment maximising
    marginal coverage, with augmenting swaps if capacity is tight).

    Raises
    ------
    KeyError
        If the reviewer is not part of the problem.
    InfeasibleProblemError
        If the remaining pool cannot cover the vacated slots.
    """
    return _run_through_engine(
        problem,
        assignment,
        lambda engine: engine.withdraw_reviewer(reviewer_id),
    )
