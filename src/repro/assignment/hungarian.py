"""Hungarian algorithm (Kuhn-Munkres) for the linear assignment problem.

The Stage Deepening Greedy Algorithm (Section 4.2) solves one linear
assignment problem per stage; the paper suggests the Hungarian algorithm or
a min-cost-flow formulation for this step.  This module implements the
classic ``O(n^2 * m)`` shortest-augmenting-path formulation of the
Hungarian algorithm with row/column potentials, written against dense
numpy cost matrices so the inner relaxation loop is fully vectorised.

The implementation is self-contained (no scipy) and is cross-checked
against ``scipy.optimize.linear_sum_assignment`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["AssignmentResult", "solve_assignment", "solve_max_assignment"]


@dataclass(frozen=True)
class AssignmentResult:
    """Result of a linear assignment.

    Attributes
    ----------
    row_to_col:
        ``row_to_col[i]`` is the column assigned to row ``i`` (or ``-1`` if
        the row is unassigned, which only happens when rows > columns).
    total_cost:
        Sum of the selected entries of the *original* matrix handed to the
        solver (cost for :func:`solve_assignment`, profit for
        :func:`solve_max_assignment`).
    """

    row_to_col: tuple[int, ...]
    total_cost: float

    def as_pairs(self) -> list[tuple[int, int]]:
        """The selected ``(row, column)`` pairs."""
        return [(row, col) for row, col in enumerate(self.row_to_col) if col >= 0]


def solve_assignment(cost_matrix: np.ndarray) -> AssignmentResult:
    """Minimum-cost assignment of rows to distinct columns.

    Every row is matched to exactly one column when ``rows <= columns``;
    otherwise every column is matched and the surplus rows stay unassigned.
    Entries must be finite; use a large finite penalty for forbidden pairs.

    Parameters
    ----------
    cost_matrix:
        Dense 2-D array of assignment costs.

    Returns
    -------
    AssignmentResult
        Optimal matching and its total cost.
    """
    cost = np.asarray(cost_matrix, dtype=np.float64)
    if cost.ndim != 2 or cost.size == 0:
        raise ConfigurationError("the cost matrix must be a non-empty 2-D array")
    if not np.all(np.isfinite(cost)):
        raise ConfigurationError(
            "the cost matrix must be finite; encode forbidden pairs with a large penalty"
        )

    transposed = cost.shape[0] > cost.shape[1]
    working = cost.T if transposed else cost
    row_to_col = _kuhn_munkres(np.ascontiguousarray(working))

    if transposed:
        # ``working`` rows are the original columns: invert the matching.
        original_rows = cost.shape[0]
        inverted = np.full(original_rows, -1, dtype=np.int64)
        for col_of_original, assigned_row in enumerate(row_to_col):
            inverted[assigned_row] = col_of_original
        matching = inverted
    else:
        matching = row_to_col

    total = float(
        sum(cost[row, col] for row, col in enumerate(matching) if col >= 0)
    )
    return AssignmentResult(row_to_col=tuple(int(col) for col in matching), total_cost=total)


def solve_max_assignment(profit_matrix: np.ndarray) -> AssignmentResult:
    """Maximum-profit assignment (negates the matrix and minimises)."""
    profit = np.asarray(profit_matrix, dtype=np.float64)
    if profit.ndim != 2 or profit.size == 0:
        raise ConfigurationError("the profit matrix must be a non-empty 2-D array")
    result = solve_assignment(-profit)
    total = float(
        sum(profit[row, col] for row, col in enumerate(result.row_to_col) if col >= 0)
    )
    return AssignmentResult(row_to_col=result.row_to_col, total_cost=total)


def _kuhn_munkres(cost: np.ndarray) -> np.ndarray:
    """Core shortest-augmenting-path Hungarian algorithm.

    Requires ``rows <= columns``.  Returns an array mapping each row to its
    assigned column.  Uses 1-based bookkeeping internally (index 0 is the
    virtual "no row / no column" sentinel), which is the standard
    formulation of the potentials-based algorithm.
    """
    num_rows, num_cols = cost.shape
    row_potential = np.zeros(num_rows + 1, dtype=np.float64)
    col_potential = np.zeros(num_cols + 1, dtype=np.float64)
    col_match = np.zeros(num_cols + 1, dtype=np.int64)  # column -> matched row (1-based)
    predecessor = np.zeros(num_cols + 1, dtype=np.int64)

    for row in range(1, num_rows + 1):
        col_match[0] = row
        current_col = 0
        min_slack = np.full(num_cols + 1, np.inf, dtype=np.float64)
        visited = np.zeros(num_cols + 1, dtype=bool)

        while True:
            visited[current_col] = True
            current_row = col_match[current_col]
            reduced = (
                cost[current_row - 1, :]
                - row_potential[current_row]
                - col_potential[1:]
            )
            unvisited = ~visited[1:]
            improves = unvisited & (reduced < min_slack[1:])
            min_slack[1:][improves] = reduced[improves]
            predecessor[1:][improves] = current_col

            candidate_slack = np.where(unvisited, min_slack[1:], np.inf)
            next_col = int(np.argmin(candidate_slack)) + 1
            delta = candidate_slack[next_col - 1]

            visited_cols = np.flatnonzero(visited)
            row_potential[col_match[visited_cols]] += delta
            col_potential[visited_cols] -= delta
            min_slack[~visited] -= delta

            current_col = next_col
            if col_match[current_col] == 0:
                break

        # Augment along the alternating path discovered above.
        while current_col != 0:
            previous_col = predecessor[current_col]
            col_match[current_col] = col_match[previous_col]
            current_col = previous_col

    row_to_col = np.full(num_rows, -1, dtype=np.int64)
    for column in range(1, num_cols + 1):
        if col_match[column] != 0:
            row_to_col[col_match[column] - 1] = column - 1
    return row_to_col
