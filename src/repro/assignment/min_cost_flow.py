"""A self-contained minimum-cost flow solver.

The paper mentions min-cost-flow assignment (Ahuja et al.) as an
alternative backend for the per-stage linear assignment of SDGA.  This
module implements the successive-shortest-path algorithm with a
Bellman-Ford (SPFA) shortest-path routine, which handles real-valued and
negative edge costs directly — convenient because assignment *profits* are
encoded as negated costs.

The solver is deliberately simple and is meant for the small and
medium-sized graphs that appear in reviewer assignment (a few hundred
papers and reviewers).  The Hungarian backend in
:mod:`repro.assignment.hungarian` is the faster default for dense stage
assignments; this one exists as an independent implementation used for
cross-validation and for capacitated graphs that do not fit the dense
matrix mould.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, SolverError

__all__ = ["Edge", "MinCostFlowSolver", "FlowResult"]


@dataclass
class Edge:
    """A directed edge in the flow network (internal representation)."""

    target: int
    capacity: float
    cost: float
    flow: float = 0.0
    #: index of the reverse edge in the adjacency list of ``target``
    reverse_index: int = -1

    @property
    def residual_capacity(self) -> float:
        """Remaining capacity on this edge."""
        return self.capacity - self.flow


@dataclass(frozen=True)
class FlowResult:
    """Outcome of a min-cost-flow computation."""

    flow_value: float
    total_cost: float
    #: flow on every *forward* edge, keyed by the handle returned by add_edge
    edge_flows: dict[int, float] = field(default_factory=dict)


class MinCostFlowSolver:
    """Build a directed network and push min-cost flow through it.

    Typical use for an assignment-shaped problem::

        solver = MinCostFlowSolver(num_nodes)
        handle = solver.add_edge(source, reviewer, capacity=workload, cost=0.0)
        ...
        result = solver.solve(source, sink, required_flow)

    Edge handles returned by :meth:`add_edge` identify forward edges in
    :attr:`FlowResult.edge_flows`.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ConfigurationError("a flow network needs at least one node")
        self._num_nodes = num_nodes
        self._graph: list[list[Edge]] = [[] for _ in range(num_nodes)]
        #: handle -> (node, index in adjacency list) for forward edges
        self._handles: list[tuple[int, int]] = []

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network."""
        return self._num_nodes

    def add_node(self) -> int:
        """Add a node and return its index."""
        self._graph.append([])
        self._num_nodes += 1
        return self._num_nodes - 1

    def add_edge(self, source: int, target: int, capacity: float, cost: float) -> int:
        """Add a directed edge and return its handle.

        Raises
        ------
        ConfigurationError
            If an endpoint is out of range or the capacity is negative.
        """
        for node in (source, target):
            if not 0 <= node < self._num_nodes:
                raise ConfigurationError(f"node {node} out of range")
        if capacity < 0:
            raise ConfigurationError("edge capacity must be non-negative")
        forward = Edge(target=target, capacity=float(capacity), cost=float(cost))
        backward = Edge(target=source, capacity=0.0, cost=-float(cost))
        forward.reverse_index = len(self._graph[target])
        backward.reverse_index = len(self._graph[source])
        self._graph[source].append(forward)
        self._graph[target].append(backward)
        handle = len(self._handles)
        self._handles.append((source, len(self._graph[source]) - 1))
        return handle

    def solve(
        self,
        source: int,
        sink: int,
        required_flow: float,
        allow_partial: bool = False,
    ) -> FlowResult:
        """Send ``required_flow`` units from ``source`` to ``sink`` at min cost.

        Parameters
        ----------
        source, sink:
            Endpoints of the flow.
        required_flow:
            Amount of flow to push.
        allow_partial:
            When false (the default) a :class:`SolverError` is raised if the
            network cannot carry the requested amount; when true the maximum
            feasible amount (at minimum cost) is returned instead.
        """
        if source == sink:
            raise ConfigurationError("source and sink must differ")
        remaining = float(required_flow)
        total_cost = 0.0
        pushed = 0.0

        while remaining > 1e-12:
            distances, parent_edge = self._shortest_paths(source)
            if distances[sink] == float("inf"):
                if allow_partial:
                    break
                raise SolverError(
                    f"network cannot carry the requested flow: pushed {pushed} "
                    f"of {required_flow}"
                )
            # Find the bottleneck along the augmenting path.
            bottleneck = remaining
            node = sink
            while node != source:
                from_node, edge_index = parent_edge[node]
                edge = self._graph[from_node][edge_index]
                bottleneck = min(bottleneck, edge.residual_capacity)
                node = from_node
            # Apply the augmentation.
            node = sink
            while node != source:
                from_node, edge_index = parent_edge[node]
                edge = self._graph[from_node][edge_index]
                edge.flow += bottleneck
                self._graph[node][edge.reverse_index].flow -= bottleneck
                node = from_node
            total_cost += bottleneck * distances[sink]
            pushed += bottleneck
            remaining -= bottleneck

        edge_flows = {
            handle: self._graph[node][index].flow
            for handle, (node, index) in enumerate(self._handles)
        }
        return FlowResult(flow_value=pushed, total_cost=total_cost, edge_flows=edge_flows)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _shortest_paths(
        self, source: int
    ) -> tuple[list[float], list[tuple[int, int]]]:
        """SPFA shortest paths over residual edges (handles negative costs)."""
        infinity = float("inf")
        distances = [infinity] * self._num_nodes
        parent_edge: list[tuple[int, int]] = [(-1, -1)] * self._num_nodes
        in_queue = [False] * self._num_nodes
        distances[source] = 0.0
        queue: deque[int] = deque([source])
        in_queue[source] = True

        while queue:
            node = queue.popleft()
            in_queue[node] = False
            node_distance = distances[node]
            for edge_index, edge in enumerate(self._graph[node]):
                if edge.residual_capacity <= 1e-12:
                    continue
                candidate = node_distance + edge.cost
                if candidate < distances[edge.target] - 1e-12:
                    distances[edge.target] = candidate
                    parent_edge[edge.target] = (node, edge_index)
                    if not in_queue[edge.target]:
                        queue.append(edge.target)
                        in_queue[edge.target] = True
        return distances, parent_edge
