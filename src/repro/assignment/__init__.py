"""Linear-assignment substrate: Hungarian, min-cost flow and transportation.

These solvers replace the off-the-shelf Hungarian / network-flow libraries
used by the paper's C++ implementation.  They are generic (they know
nothing about reviewers or papers) and are reused by the Stage Deepening
Greedy Algorithm, the stochastic refinement, and the baselines.
"""

from repro.assignment.hungarian import (
    AssignmentResult,
    solve_assignment,
    solve_max_assignment,
)
from repro.assignment.min_cost_flow import Edge, FlowResult, MinCostFlowSolver
from repro.assignment.transportation import (
    CapacitatedAssignmentResult,
    solve_capacitated_assignment,
)

__all__ = [
    "AssignmentResult",
    "solve_assignment",
    "solve_max_assignment",
    "Edge",
    "FlowResult",
    "MinCostFlowSolver",
    "CapacitatedAssignmentResult",
    "solve_capacitated_assignment",
]
