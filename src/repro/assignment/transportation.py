"""Capacitated one-reviewer-per-paper assignment (the Stage-WGRAP step).

Definition 9 of the paper asks, at every SDGA stage, for an assignment in
which *every paper gets exactly one reviewer* and *every reviewer takes at
most ``ceil(delta_r / delta_p)`` papers*, maximising the stage marginal
gain.  That is a semi-assignment (transportation) problem.  This module
solves it with two interchangeable backends:

* ``"hungarian"`` (default): expand each reviewer into as many copies as
  its per-stage capacity and run the dense Hungarian algorithm — fast and
  exact for the dense gain matrices produced by the solvers.
* ``"flow"``: build the equivalent min-cost-flow network and solve it with
  the successive-shortest-path solver — an independent implementation used
  for cross-validation and for sparse problems.

Both backends return identical objective values (verified by the tests and
by ``benchmarks/bench_ablation_assignment_backend.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assignment.hungarian import solve_max_assignment
from repro.assignment.min_cost_flow import MinCostFlowSolver
from repro.exceptions import ConfigurationError, InfeasibleProblemError, SolverError

__all__ = ["CapacitatedAssignmentResult", "solve_capacitated_assignment"]

#: profit assigned to forbidden pairs so the Hungarian backend avoids them
_FORBIDDEN_PENALTY = -1.0e9


@dataclass(frozen=True)
class CapacitatedAssignmentResult:
    """Result of a capacitated one-per-row assignment.

    Attributes
    ----------
    row_to_col:
        Column chosen for each row (every row is assigned exactly once).
    total_profit:
        Sum of the profits of the chosen cells.
    """

    row_to_col: tuple[int, ...]
    total_profit: float

    def as_pairs(self) -> list[tuple[int, int]]:
        """The selected ``(row, column)`` pairs."""
        return list(enumerate(self.row_to_col))


def solve_capacitated_assignment(
    profit_matrix: np.ndarray,
    column_capacities: np.ndarray,
    forbidden: np.ndarray | None = None,
    backend: str = "hungarian",
) -> CapacitatedAssignmentResult:
    """Assign every row to one column, respecting per-column capacities.

    Parameters
    ----------
    profit_matrix:
        ``(rows, cols)`` matrix of assignment profits (e.g. marginal gains).
    column_capacities:
        ``(cols,)`` integer capacities: how many rows each column may take.
    forbidden:
        Optional boolean ``(rows, cols)`` mask; ``True`` marks pairs that
        must not be selected (conflicts of interest).
    backend:
        ``"hungarian"`` (dense, default) or ``"flow"``.

    Raises
    ------
    InfeasibleProblemError
        If the total capacity is smaller than the number of rows, or if the
        forbidden mask makes some row unassignable.
    """
    profit = np.asarray(profit_matrix, dtype=np.float64)
    capacities = np.asarray(column_capacities, dtype=np.int64)
    if profit.ndim != 2 or profit.size == 0:
        raise ConfigurationError("the profit matrix must be a non-empty 2-D array")
    num_rows, num_cols = profit.shape
    if capacities.shape != (num_cols,):
        raise ConfigurationError(
            "column_capacities must have one entry per column of the profit matrix"
        )
    if np.any(capacities < 0):
        raise ConfigurationError("column capacities must be non-negative")
    if int(capacities.sum()) < num_rows:
        raise InfeasibleProblemError(
            f"total column capacity {int(capacities.sum())} is smaller than the "
            f"number of rows {num_rows}"
        )
    if forbidden is not None:
        forbidden = np.asarray(forbidden, dtype=bool)
        if forbidden.shape != profit.shape:
            raise ConfigurationError("the forbidden mask must match the profit matrix shape")
        if np.any(forbidden.all(axis=1)):
            raise InfeasibleProblemError("some row has every column forbidden")

    if backend == "hungarian":
        return _solve_with_hungarian(profit, capacities, forbidden)
    if backend == "flow":
        return _solve_with_flow(profit, capacities, forbidden)
    raise ConfigurationError(f"unknown backend {backend!r}; use 'hungarian' or 'flow'")


# ----------------------------------------------------------------------
# Hungarian backend: column expansion
# ----------------------------------------------------------------------
def _solve_with_hungarian(
    profit: np.ndarray, capacities: np.ndarray, forbidden: np.ndarray | None
) -> CapacitatedAssignmentResult:
    num_rows, _ = profit.shape
    masked = profit.copy()
    if forbidden is not None:
        masked[forbidden] = _FORBIDDEN_PENALTY

    # A column never needs more copies than there are rows.
    copies_per_column = np.minimum(capacities, num_rows)
    expanded_columns = np.repeat(np.arange(profit.shape[1]), copies_per_column)
    if expanded_columns.size < num_rows:
        raise InfeasibleProblemError(
            "total column capacity is smaller than the number of rows"
        )
    expanded_profit = masked[:, expanded_columns]
    result = solve_max_assignment(expanded_profit)

    row_to_col: list[int] = []
    total_profit = 0.0
    for row, expanded_col in enumerate(result.row_to_col):
        if expanded_col < 0:
            raise SolverError("the Hungarian backend left a row unassigned")
        original_col = int(expanded_columns[expanded_col])
        if forbidden is not None and forbidden[row, original_col]:
            raise InfeasibleProblemError(
                "no feasible assignment exists that avoids all forbidden pairs"
            )
        row_to_col.append(original_col)
        total_profit += float(profit[row, original_col])
    return CapacitatedAssignmentResult(
        row_to_col=tuple(row_to_col), total_profit=total_profit
    )


# ----------------------------------------------------------------------
# Min-cost-flow backend
# ----------------------------------------------------------------------
def _solve_with_flow(
    profit: np.ndarray, capacities: np.ndarray, forbidden: np.ndarray | None
) -> CapacitatedAssignmentResult:
    num_rows, num_cols = profit.shape
    source = 0
    row_offset = 1
    col_offset = 1 + num_rows
    sink = 1 + num_rows + num_cols
    solver = MinCostFlowSolver(num_nodes=sink + 1)

    for row in range(num_rows):
        solver.add_edge(source, row_offset + row, capacity=1.0, cost=0.0)

    pair_handles: dict[int, tuple[int, int]] = {}
    for row in range(num_rows):
        for col in range(num_cols):
            if forbidden is not None and forbidden[row, col]:
                continue
            handle = solver.add_edge(
                row_offset + row,
                col_offset + col,
                capacity=1.0,
                cost=-float(profit[row, col]),
            )
            pair_handles[handle] = (row, col)

    for col in range(num_cols):
        solver.add_edge(
            col_offset + col, sink, capacity=float(capacities[col]), cost=0.0
        )

    try:
        flow = solver.solve(source, sink, required_flow=float(num_rows))
    except SolverError as error:
        raise InfeasibleProblemError(
            "no feasible assignment exists under the given capacities and conflicts"
        ) from error

    row_to_col = np.full(num_rows, -1, dtype=np.int64)
    total_profit = 0.0
    for handle, (row, col) in pair_handles.items():
        if flow.edge_flows.get(handle, 0.0) > 0.5:
            row_to_col[row] = col
            total_profit += float(profit[row, col])
    if np.any(row_to_col < 0):
        raise SolverError("the flow backend left a row unassigned")
    return CapacitatedAssignmentResult(
        row_to_col=tuple(int(col) for col in row_to_col), total_profit=total_profit
    )
