"""SQLite-backed problem store with an inverted topic index.

The instance is compiled into a normalized relational schema (stdlib
``sqlite3`` — no new dependency)::

    meta(key, value)                      -- schema version, constraints, scoring
    reviewers(pos, id, name, h_index, vector)
    papers(pos, id, title, abstract, vector)
    conflicts(reviewer_id, paper_id)      -- PK (reviewer, paper) + by-paper index
    bids(reviewer_id, paper_id, value)
    reviewer_topics(reviewer_pos, topic, weight)
        INDEX topic_index(topic, weight DESC, reviewer_pos)

Topic vectors are raw little-endian float64 blobs, so a load round-trips
**bitwise** — store-backed solves are bit-identical to the in-RAM oracle
(pinned by ``tests/conformance/test_store_conformance.py``).

``reviewer_topics`` is the inverted topic index: "top reviewers for a
topic" is one index walk (``topic = ? ORDER BY weight DESC``) and a
multi-topic shortlist is an indexed join + window, replacing the linear
scan over all reviewer objects.  ``conflicts(paper_id, reviewer_id)``
turns candidate filtering into an indexed anti-join.

The store follows a live problem chain (:meth:`attach`): ``add_paper`` /
``remove_reviewer`` events and conflict changelog tails are translated
into **transactional index deltas** inside one long-running SQLite
transaction that only commits at :meth:`sync` — so a crash rolls the
store back exactly to the last checkpoint, matching the WAL-replay
contract of :mod:`repro.durability`.
"""

from __future__ import annotations

import json
import sqlite3
import weakref
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.core.constraints import ConflictOfInterest
from repro.core.entities import Paper, Reviewer
from repro.core.vectors import TopicVector
from repro.exceptions import ConfigurationError, UnsupportedFormatError
from repro.obs.trace import get_tracer
from repro.store.base import ProblemStore
from repro.store.blocks import MemmapScoreStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.problem import ProblemMutation, WGRAPProblem

TRACER = get_tracer()

__all__ = ["SCHEMA_VERSION", "SqliteProblemStore"]

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS reviewers(
    pos     INTEGER PRIMARY KEY,
    id      TEXT NOT NULL UNIQUE,
    name    TEXT NOT NULL,
    h_index INTEGER,
    vector  BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS papers(
    pos      INTEGER PRIMARY KEY,
    id       TEXT NOT NULL UNIQUE,
    title    TEXT NOT NULL,
    abstract TEXT NOT NULL,
    vector   BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS conflicts(
    reviewer_id TEXT NOT NULL,
    paper_id    TEXT NOT NULL,
    PRIMARY KEY (reviewer_id, paper_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS conflicts_by_paper
    ON conflicts(paper_id, reviewer_id);
CREATE TABLE IF NOT EXISTS bids(
    reviewer_id TEXT NOT NULL,
    paper_id    TEXT NOT NULL,
    value       REAL NOT NULL,
    PRIMARY KEY (reviewer_id, paper_id)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS reviewer_topics(
    reviewer_pos INTEGER NOT NULL,
    topic        INTEGER NOT NULL,
    weight       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS topic_index
    ON reviewer_topics(topic, weight DESC, reviewer_pos);
CREATE INDEX IF NOT EXISTS reviewer_topics_by_reviewer
    ON reviewer_topics(reviewer_pos);
"""

#: the indexes the schema maintains, for ``store info`` and the docs
INDEXES = (
    "conflicts_by_paper",
    "topic_index",
    "reviewer_topics_by_reviewer",
)


def _vector_blob(vector: TopicVector) -> bytes:
    return np.asarray(vector.values, dtype="<f8").tobytes()


def _vector_from_blob(blob: bytes) -> TopicVector:
    return TopicVector(np.frombuffer(blob, dtype="<f8"))


class SqliteProblemStore(ProblemStore):
    """One WGRAP instance persisted in one SQLite file.

    Single-writer by design (each tenant's store lives on that tenant's
    worker thread — the same discipline the journal follows), hence
    ``check_same_thread=False`` with external serialisation.
    """

    kind = "sqlite"

    def __init__(self, path: str | Path, _create: bool = False) -> None:
        super().__init__()
        self._path = Path(path)
        if not _create and not self._path.exists():
            raise ConfigurationError(f"no problem store at {self._path}")
        self._conn = sqlite3.connect(
            self._path, isolation_level=None, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        if _create:
            self._set_meta("schema_version", str(SCHEMA_VERSION))
        else:
            found = self._get_meta("schema_version")
            if found != str(SCHEMA_VERSION):
                self._conn.close()
                raise UnsupportedFormatError("problem store schema", found, SCHEMA_VERSION)
        # One long-running transaction: every index delta lands inside it
        # and only sync()/close() commit — a crash rolls back to the last
        # checkpoint, which is exactly what WAL-tail replay expects.
        self._conn.execute("BEGIN")
        self._problem_ref: Any = None
        self._listener = None
        self._conflict_seen = 0
        self._blocks: MemmapScoreStore | None = None
        if self._get_meta("blocks") == "1":
            self._blocks = MemmapScoreStore(
                self.blocks_directory,
                block_cols=int(self._get_meta("block_cols") or 64),
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        problem: "WGRAPProblem",
        blocks: bool = False,
        block_cols: int = 64,
    ) -> "SqliteProblemStore":
        """Compile a problem into a new store file (and attach to it)."""
        path = Path(path)
        if path.exists():
            raise ConfigurationError(f"refusing to overwrite existing store {path}")
        path.parent.mkdir(parents=True, exist_ok=True)
        store = cls(path, _create=True)
        with TRACER.span(
            "store.open",
            mode="create",
            reviewers=problem.num_reviewers,
            papers=problem.num_papers,
        ):
            store._bulk_load(problem)
            if blocks:
                store._set_meta("blocks", "1")
                store._set_meta("block_cols", str(int(block_cols)))
                store._blocks = MemmapScoreStore(
                    store.blocks_directory, block_cols=block_cols
                )
            store.attach(problem)
            store.sync()
        return store

    @classmethod
    def open(cls, path: str | Path) -> "SqliteProblemStore":
        """Open an existing store file."""
        with TRACER.span("store.open", mode="open", path=str(path)):
            return cls(path)

    @property
    def path(self) -> Path:
        return self._path

    @property
    def blocks_directory(self) -> Path:
        return Path(str(self._path) + ".blocks")

    # ------------------------------------------------------------------
    # Meta helpers
    # ------------------------------------------------------------------
    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta(key, value) VALUES (?, ?)", (key, value)
        )

    def _get_meta(self, key: str) -> str | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    # ------------------------------------------------------------------
    # Bulk load (create-time) and conservative rebuild
    # ------------------------------------------------------------------
    def _bulk_load(self, problem: "WGRAPProblem") -> None:
        self._conn.execute("DELETE FROM reviewers")
        self._conn.execute("DELETE FROM papers")
        self._conn.execute("DELETE FROM conflicts")
        self._conn.execute("DELETE FROM reviewer_topics")
        self._set_meta("group_size", str(problem.group_size))
        self._set_meta("reviewer_workload", str(problem.reviewer_workload))
        self._set_meta("num_topics", str(problem.num_topics))
        self._set_meta("scoring", problem.scoring.name)
        self._conn.executemany(
            "INSERT INTO reviewers(pos, id, name, h_index, vector) VALUES (?, ?, ?, ?, ?)",
            [
                (pos, reviewer.id, reviewer.name, reviewer.h_index, _vector_blob(reviewer.vector))
                for pos, reviewer in enumerate(problem.reviewers)
            ],
        )
        self._conn.executemany(
            "INSERT INTO papers(pos, id, title, abstract, vector) VALUES (?, ?, ?, ?, ?)",
            [
                (pos, paper.id, paper.title, paper.abstract, _vector_blob(paper.vector))
                for pos, paper in enumerate(problem.papers)
            ],
        )
        self._conn.executemany(
            "INSERT INTO conflicts(reviewer_id, paper_id) VALUES (?, ?)",
            [tuple(pair) for pair in problem.conflicts],
        )
        self._conn.executemany(
            "INSERT INTO reviewer_topics(reviewer_pos, topic, weight) VALUES (?, ?, ?)",
            self._postings(problem),
        )

    @staticmethod
    def _postings(problem: "WGRAPProblem") -> list[tuple[int, int, float]]:
        rows: list[tuple[int, int, float]] = []
        for pos, reviewer in enumerate(problem.reviewers):
            values = np.asarray(reviewer.vector.values, dtype=np.float64)
            for topic in np.nonzero(values)[0]:
                rows.append((pos, int(topic), float(values[topic])))
        return rows

    def _rebuild(self, problem: "WGRAPProblem") -> None:
        """Conservative full rebuild — only for unknown mutation kinds or
        a branched chain; the three tracked events never come here."""
        self._bulk_load(problem)
        self.stats.rebuilds += 1

    # ------------------------------------------------------------------
    # Live maintenance
    # ------------------------------------------------------------------
    def attach(self, problem: "WGRAPProblem") -> None:
        """Follow ``problem``'s mutation chain with transactional deltas."""
        tracked = self._problem_ref() if self._problem_ref is not None else None
        if tracked is not None and tracked is not problem:
            # Re-attached to a different chain member (e.g. the engine's
            # withdraw rollback): the rows may no longer match — rebase.
            self._rebuild(problem)
        self._problem_ref = weakref.ref(problem)
        self._conflict_seen = problem.conflicts.version
        problem.bind_entity_store(self)
        if self._listener is None:
            store_ref = weakref.ref(self)

            def listener(mutation: "ProblemMutation") -> None:
                store = store_ref()
                if store is None:
                    mutation.source.remove_mutation_listener(listener)
                    mutation.result.remove_mutation_listener(listener)
                    return
                store._on_mutation(mutation)

            self._listener = listener
        # Register on *this* problem too: listeners carry down a mutation
        # chain, but a freshly materialised problem (load_problem) or a
        # rollback rebase starts a new chain the old subscription never
        # reaches.  add_mutation_listener is idempotent.
        problem.add_mutation_listener(self._listener)

    def tracks(self, problem: "WGRAPProblem") -> bool:
        return self._problem_ref is not None and self._problem_ref() is problem

    def _on_mutation(self, mutation: "ProblemMutation") -> None:
        with TRACER.span("store.index_update", kind=mutation.kind):
            tracked = self._problem_ref() if self._problem_ref is not None else None
            if tracked is not mutation.source:
                # A branched or unknown chain: rebase on the result.
                self._rebuild(mutation.result)
            elif mutation.kind == "add_paper":
                # Flush the source container's conflict tail first — the
                # derived problem's container restarts its changelog.
                self._replay_conflicts(mutation.source)
                for paper_id in mutation.papers:
                    paper = mutation.result.paper_by_id(paper_id)
                    self._conn.execute(
                        "INSERT INTO papers(pos, id, title, abstract, vector) "
                        "VALUES ((SELECT COALESCE(MAX(pos), -1) + 1 FROM papers), ?, ?, ?, ?)",
                        (paper.id, paper.title, paper.abstract, _vector_blob(paper.vector)),
                    )
                self.stats.index_updates += 1
            elif mutation.kind == "remove_reviewer":
                self._replay_conflicts(mutation.source)
                for reviewer_id in mutation.reviewers:
                    row = self._conn.execute(
                        "SELECT pos FROM reviewers WHERE id = ?", (reviewer_id,)
                    ).fetchone()
                    if row is None:
                        continue
                    pos = int(row[0])
                    self._conn.execute("DELETE FROM reviewers WHERE pos = ?", (pos,))
                    self._conn.execute(
                        "DELETE FROM reviewer_topics WHERE reviewer_pos = ?", (pos,)
                    )
                    self._conn.execute(
                        "DELETE FROM bids WHERE reviewer_id = ?", (reviewer_id,)
                    )
                    # Conflict rows stay: the problem's conflict container
                    # keeps pairs of withdrawn reviewers, and the table
                    # mirrors the container exactly.
                self.stats.index_updates += 1
            else:
                self._rebuild(mutation.result)
            # Scalar constraints can change on the mutation itself (an
            # add_paper may raise reviewer_workload to keep the problem
            # feasible) — a reopened problem must see the constraints the
            # live chain ended with, not the ones it started from.
            result = mutation.result
            if self._get_meta("group_size") != str(result.group_size):
                self._set_meta("group_size", str(result.group_size))
            if self._get_meta("reviewer_workload") != str(result.reviewer_workload):
                self._set_meta("reviewer_workload", str(result.reviewer_workload))
        self._problem_ref = weakref.ref(mutation.result)
        self._conflict_seen = mutation.result.conflicts.version
        mutation.result.bind_entity_store(self)

    def _replay_conflicts(self, problem: "WGRAPProblem | None" = None) -> None:
        """Translate the conflict changelog tail into row deltas."""
        if problem is None:
            problem = self._problem_ref() if self._problem_ref is not None else None
        if problem is None:
            return
        conflicts = problem.conflicts
        if conflicts.version == self._conflict_seen:
            return
        changes = conflicts.changes_since(self._conflict_seen)
        with TRACER.span(
            "store.index_update", kind="conflicts",
            changes=-1 if changes is None else len(changes),
        ):
            if changes is None:
                # The changelog was compacted past our cursor: rebuild the
                # conflict table from the container (counted — incremental
                # maintenance exists to keep this at zero).
                self._conn.execute("DELETE FROM conflicts")
                self._conn.executemany(
                    "INSERT INTO conflicts(reviewer_id, paper_id) VALUES (?, ?)",
                    [tuple(pair) for pair in conflicts],
                )
                self.stats.rebuilds += 1
            else:
                for reviewer_id, paper_id, is_conflict in changes:
                    if is_conflict:
                        self._conn.execute(
                            "INSERT OR REPLACE INTO conflicts(reviewer_id, paper_id) "
                            "VALUES (?, ?)",
                            (reviewer_id, paper_id),
                        )
                    else:
                        self._conn.execute(
                            "DELETE FROM conflicts WHERE reviewer_id = ? AND paper_id = ?",
                            (reviewer_id, paper_id),
                        )
                self.stats.conflict_deltas += len(changes)
        self._conflict_seen = conflicts.version

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def load_problem(self) -> "WGRAPProblem":
        from repro.core.problem import WGRAPProblem

        with TRACER.span("store.compile", path=str(self._path)):
            group_size = int(self._require_meta("group_size"))
            reviewer_workload = int(self._require_meta("reviewer_workload"))
            scoring = self._require_meta("scoring")
            reviewers = [
                Reviewer(
                    id=row[0],
                    vector=_vector_from_blob(row[3]),
                    name=row[1],
                    h_index=None if row[2] is None else int(row[2]),
                )
                for row in self._conn.execute(
                    "SELECT id, name, h_index, vector FROM reviewers ORDER BY pos"
                )
            ]
            papers = [
                Paper(
                    id=row[0],
                    vector=_vector_from_blob(row[3]),
                    title=row[1],
                    abstract=row[2],
                )
                for row in self._conn.execute(
                    "SELECT id, title, abstract, vector FROM papers ORDER BY pos"
                )
            ]
            conflicts = ConflictOfInterest(
                (str(row[0]), str(row[1]))
                for row in self._conn.execute(
                    "SELECT reviewer_id, paper_id FROM conflicts "
                    "ORDER BY reviewer_id, paper_id"
                )
            )
            # Mid-chain states can be capacity-infeasible (a withdraw before
            # the balancing add), exactly like conformance cold clones.
            problem = WGRAPProblem(
                papers=papers,
                reviewers=reviewers,
                group_size=group_size,
                reviewer_workload=reviewer_workload,
                conflicts=conflicts,
                scoring=scoring,
                validate_capacity=False,
            )
        self.stats.loads += 1
        # The materialised problem mirrors the rows by construction, so
        # take over tracking directly — a subsequent attach() must not
        # mistake it for a foreign chain and trigger a full rebuild.
        self._problem_ref = None
        self.attach(problem)
        return problem

    def _require_meta(self, key: str) -> str:
        value = self._get_meta(key)
        if value is None:
            raise ConfigurationError(
                f"store {self._path} has no {key!r} metadata; not a problem store?"
            )
        return value

    # ------------------------------------------------------------------
    # Candidate generation (the indexed path)
    # ------------------------------------------------------------------
    def candidate_reviewers(self, paper_id: str) -> list[str]:
        """Indexed anti-join replacing the reviewer scan (same output)."""
        self._replay_conflicts()
        self.stats.index_hits += 1
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT id FROM reviewers WHERE id NOT IN "
                "(SELECT reviewer_id FROM conflicts WHERE paper_id = ?) "
                "ORDER BY pos",
                (paper_id,),
            )
        ]

    def topic_candidates(
        self, vector: Any, limit: int, num_topics: int | None = None
    ) -> list[tuple[str, float]]:
        """Shortlist by inverted-index join over the query's live topics."""
        query = np.asarray(vector, dtype=np.float64).reshape(-1)
        topics = np.nonzero(query)[0]
        self.stats.index_hits += 1
        if topics.size == 0 or limit < 1:
            return []
        placeholders = ", ".join("(?, ?)" for _ in topics)
        params: list[Any] = []
        for topic in topics:
            params.extend((int(topic), float(query[topic])))
        params.append(int(limit))
        rows = self._conn.execute(
            f"WITH query(topic, w) AS (VALUES {placeholders}) "
            "SELECT r.id, SUM(query.w * rt.weight) AS proxy "
            "FROM query "
            "JOIN reviewer_topics rt ON rt.topic = query.topic "
            "JOIN reviewers r ON r.pos = rt.reviewer_pos "
            "GROUP BY rt.reviewer_pos "
            "ORDER BY proxy DESC, rt.reviewer_pos "
            "LIMIT ?",
            params,
        ).fetchall()
        return [(str(row[0]), float(row[1])) for row in rows]

    # ------------------------------------------------------------------
    # Adjacent state
    # ------------------------------------------------------------------
    def record_bids(self, bids: Iterable[tuple[str, str, float]]) -> int:
        triples = [(str(r), str(p), float(v)) for r, p, v in bids]
        self._conn.executemany(
            "INSERT OR REPLACE INTO bids(reviewer_id, paper_id, value) VALUES (?, ?, ?)",
            triples,
        )
        return len(triples)

    def load_bids(self) -> tuple[tuple[str, str, float], ...]:
        return tuple(
            (str(row[0]), str(row[1]), float(row[2]))
            for row in self._conn.execute(
                "SELECT reviewer_id, paper_id, value FROM bids "
                "ORDER BY reviewer_id, paper_id"
            )
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def matrix_backend(self) -> MemmapScoreStore | None:
        return self._blocks

    def sync(self) -> None:
        """Commit pending deltas: checkpoint = store sync, not a rewrite."""
        self._replay_conflicts()
        self._conn.execute("COMMIT")
        self._conn.execute("BEGIN")
        if self._blocks is not None:
            self._blocks.flush()
        self.stats.syncs += 1

    def close(self) -> None:
        self._replay_conflicts()
        self._conn.execute("COMMIT")
        self._conn.close()
        if self._blocks is not None:
            self._blocks.close()

    def abort(self) -> None:
        """Roll back the open transaction (crash-stop; releases locks)."""
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:  # pragma: no cover - already closed/rolled back
            pass
        self._conn.close()
        if self._blocks is not None:
            self._blocks.close()

    def _count_rows(self, table: str) -> int:
        return int(self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0])

    def describe(self) -> dict[str, Any]:
        self._replay_conflicts()
        payload: dict[str, Any] = {
            **super().describe(),
            "path": str(self._path),
            "schema_version": SCHEMA_VERSION,
            "reviewer_rows": self._count_rows("reviewers"),
            "paper_rows": self._count_rows("papers"),
            "conflict_rows": self._count_rows("conflicts"),
            "bid_rows": self._count_rows("bids"),
            "index_rows": self._count_rows("reviewer_topics"),
            "indexes": list(INDEXES),
            "meta": {
                str(key): str(value)
                for key, value in self._conn.execute("SELECT key, value FROM meta")
            },
        }
        if self._blocks is not None:
            payload["blocks"] = self._blocks.describe()
        return payload

    def info_json(self) -> str:
        """The ``wgrap store info`` payload."""
        return json.dumps(self.describe(), indent=2, sort_keys=True)
