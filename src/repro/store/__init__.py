"""Pluggable problem storage: in-RAM, SQLite + inverted index, memmap blocks.

See :mod:`repro.store.base` for the interface, ``docs/storage.md`` for
the schema/layout reference, and ``tests/conformance/test_store_conformance.py``
for the bitwise-equality contract every backend is held to.
"""

from repro.store.base import EntityIndex, ProblemStore, StoreStats
from repro.store.blocks import MemmapScoreStore
from repro.store.memory import InMemoryProblemStore
from repro.store.sqlite import SCHEMA_VERSION, SqliteProblemStore

__all__ = [
    "EntityIndex",
    "InMemoryProblemStore",
    "MemmapScoreStore",
    "ProblemStore",
    "SCHEMA_VERSION",
    "SqliteProblemStore",
    "StoreStats",
]
