"""The pluggable problem-storage layer: interface and shared pieces.

A :class:`ProblemStore` owns the durable (or resident) representation of
one WGRAP instance — reviewers, papers, conflicts and bids — and keeps it
current under the live mutation stream: attached to a problem chain, the
store translates ``add_paper`` / ``remove_reviewer`` events and conflict
changelog tails into incremental index updates, never a rebuild.

Two implementations exist:

* :class:`repro.store.memory.InMemoryProblemStore` — the historical
  in-RAM path, extracted behaviour-preserving (entity tuples + the scan);
* :class:`repro.store.sqlite.SqliteProblemStore` — a normalized SQLite
  schema (stdlib ``sqlite3``) with an inverted topic index, so candidate
  generation becomes an indexed range query instead of a scan.

``EntityIndex`` lives here because both the stores and
:class:`~repro.core.problem.WGRAPProblem` itself need the same id/position
bookkeeping — the problem's entity access is a store-handle concern now.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (problem imports us)
    from repro.core.problem import WGRAPProblem
    from repro.store.blocks import MemmapScoreStore

__all__ = ["EntityIndex", "ProblemStore", "StoreStats"]


class EntityIndex:
    """Shared index bookkeeping for papers and reviewers.

    Moved here from ``repro.core.problem`` (where it was ``_EntityIndex``)
    so every storage backend reuses the same id/position mapping and
    duplicate detection the problem itself relies on.
    """

    __slots__ = ("ids", "positions")

    def __init__(self, ids: Sequence[str], kind: str) -> None:
        self.ids: tuple[str, ...] = tuple(ids)
        self.positions: dict[str, int] = {}
        for position, identifier in enumerate(self.ids):
            if identifier in self.positions:
                raise ConfigurationError(f"duplicate {kind} id: {identifier!r}")
            self.positions[identifier] = position

    def index_of(self, identifier: str, kind: str) -> int:
        try:
            return self.positions[identifier]
        except KeyError:
            raise KeyError(f"unknown {kind} id: {identifier!r}") from None


@dataclass
class StoreStats:
    """Counters describing the work a problem store has done.

    Attributes
    ----------
    index_updates:
        Mutation events translated into incremental index deltas.
    index_hits:
        Candidate/shortlist queries answered from the (inverted) index.
    conflict_deltas:
        Conflict changelog entries replayed into the store.
    rebuilds:
        Conservative full rebuilds (unknown mutation kinds or a compacted
        conflict changelog) — the thing incremental maintenance avoids.
    syncs:
        Explicit :meth:`ProblemStore.sync` commits.
    loads:
        Full problem materialisations (:meth:`ProblemStore.load_problem`).
    """

    index_updates: int = 0
    index_hits: int = 0
    conflict_deltas: int = 0
    rebuilds: int = 0
    syncs: int = 0
    loads: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "index_updates": self.index_updates,
            "index_hits": self.index_hits,
            "conflict_deltas": self.conflict_deltas,
            "rebuilds": self.rebuilds,
            "syncs": self.syncs,
            "loads": self.loads,
        }


class ProblemStore(abc.ABC):
    """Interface every problem-storage backend implements.

    A store can *materialise* a problem (:meth:`load_problem`), *follow*
    a live mutation chain (:meth:`attach`), answer candidate queries, and
    persist itself (:meth:`sync`).  The engine owns exactly one store per
    tenant; the in-RAM implementation makes the historical no-store path
    just another backend.
    """

    #: short backend tag ("memory" / "sqlite"), used by describe() and stats
    kind: str = "abstract"

    def __init__(self) -> None:
        self.stats = StoreStats()

    # -- materialisation ------------------------------------------------
    @abc.abstractmethod
    def load_problem(self) -> "WGRAPProblem":
        """Materialise the stored instance as a :class:`WGRAPProblem`."""

    @abc.abstractmethod
    def attach(self, problem: "WGRAPProblem") -> None:
        """Follow ``problem``'s mutation chain with incremental updates."""

    def tracks(self, problem: "WGRAPProblem") -> bool:
        """Whether this store currently mirrors exactly ``problem``.

        :attr:`WGRAPProblem.entity_store` only delegates entity queries to
        a bound store while it tracks that problem — a query against an
        older instance in the chain must not be answered from newer state.
        """
        return False

    # -- candidate generation ------------------------------------------
    @abc.abstractmethod
    def candidate_reviewers(self, paper_id: str) -> list[str]:
        """Non-conflicted reviewer ids for one paper, in problem order."""

    @abc.abstractmethod
    def topic_candidates(
        self, vector: Any, limit: int, num_topics: int | None = None
    ) -> list[tuple[str, float]]:
        """Top reviewers by inverted-index proxy score for a topic vector.

        The proxy is the dot product restricted to the vector's non-zero
        topics, answered from the inverted topic index — a shortlist
        generator for retrieval-style pruning, not an exact scoring.
        """

    # -- adjacent state -------------------------------------------------
    @abc.abstractmethod
    def record_bids(self, bids: Iterable[tuple[str, str, float]]) -> int:
        """Persist bid triples; returns the number recorded."""

    @abc.abstractmethod
    def load_bids(self) -> tuple[tuple[str, str, float], ...]:
        """All persisted bids, ordered by (reviewer_id, paper_id)."""

    # -- lifecycle ------------------------------------------------------
    def matrix_backend(self) -> "MemmapScoreStore | None":
        """The block score-matrix backend, or ``None`` for in-RAM caches."""
        return None

    @property
    def path(self) -> Any:
        """Where the store persists, or ``None`` for purely resident ones."""
        return None

    def sync(self) -> None:
        """Commit pending deltas to durable storage (no-op in RAM)."""
        self.stats.syncs += 1

    def close(self) -> None:
        """Commit and release resources; the store is unusable afterwards."""

    def abort(self) -> None:
        """Crash-stop: discard uncommitted deltas instead of committing.

        The transactional backend overrides this with a rollback; in RAM
        there is nothing durable to protect, so it is just :meth:`close`.
        """
        self.close()

    def describe(self) -> dict[str, Any]:
        """Row/index statistics for ``stats`` requests and ``store info``."""
        return {"kind": self.kind, **self.stats.as_dict()}
