"""Block-aligned, memory-mapped score-matrix storage.

One :class:`MemmapScoreStore` owns a directory holding a single
column-major (Fortran-order) ``float64`` file of shape
``(rows, capacity)`` plus a small ``meta.json`` sidecar::

    blocks/
      meta.json           # {rows, cols, capacity, generation, block_cols}
      scores-000003.bin   # rows * capacity * 8 bytes, column-contiguous

Column-major layout makes a *column* contiguous on disk, which matches
every access pattern of :class:`repro.service.cache.ScoreMatrixCache`:
appending a late paper writes one contiguous tail region, repairing a
dirty column rewrites one contiguous region, and per-paper shortlists
read one contiguous region.  Capacity grows in blocks of ``block_cols``
columns so appends amortise to one ``ftruncate`` per block.

Shape-changing operations (full rebuilds, reviewer-row drops) always
allocate a **new generation file** instead of rewriting in place: any
older read-only view some problem adopted keeps mapping the unlinked old
file, so historical views stay bitwise-intact while the store moves on.
Same-shape writes (column appends into reserved capacity, dirty-column
repairs) land beyond the region any older view maps, which is what makes
zero-copy adoption of the live view safe.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.trace import get_tracer

TRACER = get_tracer()

__all__ = ["MemmapScoreStore"]

_META_NAME = "meta.json"


class MemmapScoreStore:
    """A growable on-disk ``(rows, cols)`` float64 matrix, block-aligned.

    The store starts empty (``allocate``/``write_all``/``build`` create
    the first generation) and afterwards supports exactly the mutations
    the score cache needs: ``append_column``, ``set_column`` (through the
    writable view), and ``drop_row``.  All block traffic is counted so
    the observability layer can report reads, writes and mapped bytes.
    """

    def __init__(self, directory: str | Path, block_cols: int = 64) -> None:
        self.directory = Path(directory)
        if block_cols < 1:
            raise ConfigurationError("block_cols must be at least 1")
        self.block_cols = int(block_cols)
        self.rows = 0
        self.cols = 0
        self.capacity = 0
        self.generation = 0
        self._map: np.memmap | None = None
        self.block_reads = 0
        self.block_writes = 0
        self.appends = 0
        self.drops = 0
        meta_path = self.directory / _META_NAME
        if meta_path.exists():
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            self.rows = int(meta["rows"])
            self.cols = int(meta["cols"])
            self.capacity = int(meta["capacity"])
            self.generation = int(meta["generation"])
            self.block_cols = int(meta.get("block_cols", self.block_cols))
            if self.rows and self.capacity:
                self._map = np.memmap(
                    self._data_path(),
                    dtype=np.float64,
                    mode="r+",
                    shape=(self.rows, self.capacity),
                    order="F",
                )

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    def _data_path(self, generation: int | None = None) -> Path:
        gen = self.generation if generation is None else generation
        return self.directory / f"scores-{gen:06d}.bin"

    def _round_up(self, cols: int) -> int:
        blocks = max(1, -(-int(cols) // self.block_cols))
        return blocks * self.block_cols

    def _save_meta(self) -> None:
        meta = {
            "rows": self.rows,
            "cols": self.cols,
            "capacity": self.capacity,
            "generation": self.generation,
            "block_cols": self.block_cols,
            "dtype": "float64",
        }
        tmp = self.directory / (_META_NAME + ".tmp")
        tmp.write_text(json.dumps(meta, indent=2), encoding="utf-8")
        os.replace(tmp, self.directory / _META_NAME)

    @property
    def is_allocated(self) -> bool:
        return self._map is not None

    @property
    def bytes_mapped(self) -> int:
        return self.rows * self.capacity * 8

    # ------------------------------------------------------------------
    # Allocation and full builds
    # ------------------------------------------------------------------
    def allocate(self, rows: int, cols: int) -> np.memmap:
        """Start a fresh zero-filled generation sized for ``(rows, cols)``.

        The previous generation file (if any) is unlinked, but any live
        memmap view of it keeps it readable until the view is collected.
        """
        if rows < 1 or cols < 1:
            raise ConfigurationError(
                f"cannot allocate a ({rows}, {cols}) score block file"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        old = self._data_path() if self._map is not None else None
        self.generation += 1
        self.rows = int(rows)
        self.cols = int(cols)
        self.capacity = self._round_up(cols)
        path = self._data_path()
        with open(path, "wb") as handle:
            handle.truncate(self.rows * self.capacity * 8)
        self._map = np.memmap(
            path, dtype=np.float64, mode="r+", shape=(self.rows, self.capacity), order="F"
        )
        self._save_meta()
        if old is not None:
            Path(old).unlink(missing_ok=True)
        return self.view()

    def write_all(self, matrix: np.ndarray) -> np.memmap:
        """Copy a whole ``(rows, cols)`` matrix into a fresh generation."""
        matrix = np.asarray(matrix, dtype=np.float64)
        with TRACER.span(
            "store.block_io", op="write_all", rows=int(matrix.shape[0]),
            cols=int(matrix.shape[1]),
        ):
            view = self.allocate(matrix.shape[0], matrix.shape[1])
            for start in range(0, self.cols, self.block_cols):
                stop = min(start + self.block_cols, self.cols)
                view[:, start:stop] = matrix[:, start:stop]
                self.block_writes += 1
        return view

    def build(
        self, rows: int, cols: int, scorer: Callable[[int, int], np.ndarray]
    ) -> np.memmap:
        """Fill a fresh generation block-by-block from ``scorer(j0, j1)``.

        Peak RAM is one ``(rows, block_cols)`` block plus whatever the
        scorer holds — this is the out-of-core full build: the complete
        matrix only ever exists on disk.
        """
        with TRACER.span("store.block_io", op="build", rows=rows, cols=cols):
            view = self.allocate(rows, cols)
            for start in range(0, self.cols, self.block_cols):
                stop = min(start + self.block_cols, self.cols)
                view[:, start:stop] = scorer(start, stop)
                self.block_writes += 1
        return view

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view(self, writable: bool = True) -> np.memmap:
        """The current ``(rows, cols)`` slice of the mapped file."""
        if self._map is None:
            raise ConfigurationError("score block store has not been allocated")
        self.block_reads += 1
        sliced = self._map[:, : self.cols]
        if not writable:
            sliced = sliced[:]
            sliced.setflags(write=False)
        return sliced

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def append_column(self, values: np.ndarray | None = None) -> np.memmap:
        """Append one column (zeros when ``values`` is ``None``).

        Stays inside reserved capacity when possible; otherwise extends
        the *same* file by one block (older views map a prefix region the
        extension never touches).
        """
        if self._map is None:
            raise ConfigurationError("score block store has not been allocated")
        with TRACER.span("store.block_io", op="append", col=self.cols):
            if self.cols == self.capacity:
                self.capacity += self.block_cols
                path = self._data_path()
                with open(path, "r+b") as handle:
                    handle.truncate(self.rows * self.capacity * 8)
                self._map = np.memmap(
                    path,
                    dtype=np.float64,
                    mode="r+",
                    shape=(self.rows, self.capacity),
                    order="F",
                )
            if values is not None:
                column = np.asarray(values, dtype=np.float64).reshape(-1)
                if column.shape[0] != self.rows:
                    raise ConfigurationError(
                        f"appended column has {column.shape[0]} rows, store has "
                        f"{self.rows}"
                    )
                self._map[:, self.cols] = column
            self.cols += 1
            self.block_writes += 1
            self.appends += 1
            self._save_meta()
        return self.view()

    def drop_row(self, row: int) -> np.memmap:
        """Remove one row by rewriting into a fresh generation, blockwise.

        No re-scoring happens (pair scores are independent across rows);
        the cost is one sequential read+write pass over the file.  Older
        adopted views keep mapping the previous generation untouched.
        """
        if self._map is None:
            raise ConfigurationError("score block store has not been allocated")
        if not 0 <= row < self.rows:
            raise ConfigurationError(f"row {row} out of range for {self.rows} rows")
        if self.rows == 1:
            raise ConfigurationError("cannot drop the only row of the score store")
        with TRACER.span("store.block_io", op="drop_row", row=row):
            source = self._map
            cols = self.cols
            view = self.allocate(self.rows - 1, max(1, cols))
            self.cols = cols
            for start in range(0, cols, self.block_cols):
                stop = min(start + self.block_cols, cols)
                block = np.asarray(source[:, start:stop])
                self.block_reads += 1
                view[:, start:stop] = np.delete(block, row, axis=0)
                self.block_writes += 1
            self.drops += 1
            self._save_meta()
        return self.view()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Push dirty mapped pages to disk."""
        if self._map is not None:
            self._map.flush()

    def close(self) -> None:
        self.flush()
        self._map = None

    def describe(self) -> dict[str, Any]:
        return {
            "directory": str(self.directory),
            "rows": self.rows,
            "cols": self.cols,
            "capacity": self.capacity,
            "generation": self.generation,
            "block_cols": self.block_cols,
            "block_reads": self.block_reads,
            "block_writes": self.block_writes,
            "appends": self.appends,
            "drops": self.drops,
            "bytes_mapped": self.bytes_mapped,
        }
