"""CSV snapshot format for problem stores (``wgrap store import/export``).

One problem is a directory of flat files::

    snapshot/
      meta.json       # group_size, reviewer_workload, num_topics, scoring
      reviewers.csv   # id, name, h_index, vector
      papers.csv      # id, title, abstract, vector
      conflicts.csv   # reviewer_id, paper_id
      bids.csv        # reviewer_id, paper_id, value

Topic vectors are space-joined ``repr`` floats: Python's ``repr`` emits
the shortest string that parses back to the identical IEEE-754 double, so
the CSV round-trip is **bitwise** — the same contract the SQLite blob
encoding and the JSON format keep, pinned by ``tests/test_store_cli.py``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.constraints import ConflictOfInterest
from repro.core.entities import Paper, Reviewer
from repro.core.vectors import TopicVector
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.problem import WGRAPProblem

__all__ = ["export_problem_csv", "import_problem_csv"]

_META_NAME = "meta.json"


def _vector_text(vector: TopicVector) -> str:
    return " ".join(repr(float(v)) for v in np.asarray(vector.values, dtype=np.float64))


def _vector_from_text(text: str) -> TopicVector:
    return TopicVector(np.array([float(part) for part in text.split()], dtype=np.float64))


def export_problem_csv(
    problem: "WGRAPProblem",
    directory: str | Path,
    bids: Iterable[tuple[str, str, float]] = (),
) -> Path:
    """Write one problem (and optional bids) as a CSV snapshot directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / _META_NAME).write_text(
        json.dumps(
            {
                "group_size": problem.group_size,
                "reviewer_workload": problem.reviewer_workload,
                "num_topics": problem.num_topics,
                "scoring": problem.scoring.name,
            },
            indent=2,
        ),
        encoding="utf-8",
    )
    with open(directory / "reviewers.csv", "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "name", "h_index", "vector"])
        for reviewer in problem.reviewers:
            writer.writerow(
                [
                    reviewer.id,
                    reviewer.name,
                    "" if reviewer.h_index is None else reviewer.h_index,
                    _vector_text(reviewer.vector),
                ]
            )
    with open(directory / "papers.csv", "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "title", "abstract", "vector"])
        for paper in problem.papers:
            writer.writerow(
                [paper.id, paper.title, paper.abstract, _vector_text(paper.vector)]
            )
    with open(directory / "conflicts.csv", "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["reviewer_id", "paper_id"])
        for reviewer_id, paper_id in problem.conflicts:
            writer.writerow([reviewer_id, paper_id])
    with open(directory / "bids.csv", "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["reviewer_id", "paper_id", "value"])
        for reviewer_id, paper_id, value in bids:
            writer.writerow([reviewer_id, paper_id, repr(float(value))])
    return directory


def import_problem_csv(
    directory: str | Path,
) -> tuple["WGRAPProblem", tuple[tuple[str, str, float], ...]]:
    """Read a CSV snapshot directory back into a problem plus bids."""
    from repro.core.problem import WGRAPProblem

    directory = Path(directory)
    meta_path = directory / _META_NAME
    if not meta_path.exists():
        raise ConfigurationError(
            f"{directory} is not a CSV problem snapshot (no {_META_NAME})"
        )
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    with open(directory / "reviewers.csv", encoding="utf-8", newline="") as handle:
        reviewers = [
            Reviewer(
                id=row["id"],
                vector=_vector_from_text(row["vector"]),
                name=row["name"],
                h_index=int(row["h_index"]) if row["h_index"] else None,
            )
            for row in csv.DictReader(handle)
        ]
    with open(directory / "papers.csv", encoding="utf-8", newline="") as handle:
        papers = [
            Paper(
                id=row["id"],
                vector=_vector_from_text(row["vector"]),
                title=row["title"],
                abstract=row["abstract"],
            )
            for row in csv.DictReader(handle)
        ]
    with open(directory / "conflicts.csv", encoding="utf-8", newline="") as handle:
        conflicts = ConflictOfInterest(
            (row["reviewer_id"], row["paper_id"]) for row in csv.DictReader(handle)
        )
    bids: tuple[tuple[str, str, float], ...] = ()
    bids_path = directory / "bids.csv"
    if bids_path.exists():
        with open(bids_path, encoding="utf-8", newline="") as handle:
            bids = tuple(
                (row["reviewer_id"], row["paper_id"], float(row["value"]))
                for row in csv.DictReader(handle)
            )
    problem = WGRAPProblem(
        papers=papers,
        reviewers=reviewers,
        group_size=int(meta["group_size"]),
        reviewer_workload=int(meta["reviewer_workload"]),
        conflicts=conflicts,
        scoring=meta.get("scoring"),
        validate_capacity=False,
    )
    return problem, bids
