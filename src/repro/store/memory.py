"""The in-RAM problem store: the historical resident path, extracted.

:class:`InMemoryProblemStore` is what every :class:`WGRAPProblem` has
always done, packaged behind the :class:`~repro.store.base.ProblemStore`
interface: entities live as tuples on the problem, candidate generation
is the linear scan over ``reviewer_ids`` with the conflict set as a
filter, and nothing persists.  Extracting it keeps the no-store path
behaviour-preserving (the scan is the same code, bitwise) while making
"which backend holds the entities" a constructor choice instead of an
assumption baked into the problem.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.store.base import ProblemStore

if TYPE_CHECKING:  # pragma: no cover - the problem imports this module
    from repro.core.problem import ProblemMutation, WGRAPProblem

__all__ = ["InMemoryProblemStore", "topic_proxy_scores"]


def topic_proxy_scores(reviewer_matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """The shortlist proxy both store backends rank by: ``W_r · q``.

    Restricting the dot product to the query's non-zero topics is exactly
    the full dot product (zero entries contribute nothing), which is what
    lets the SQLite backend answer the same query from its inverted topic
    index without touching zero postings.
    """
    return reviewer_matrix @ np.asarray(vector, dtype=np.float64)


class InMemoryProblemStore(ProblemStore):
    """Resident store over a live :class:`WGRAPProblem` (no persistence).

    Doubles as the problem's own entity handle
    (:attr:`WGRAPProblem.entity_store`): entity access and the candidate
    scan go through here, so swapping in an indexed backend is a handle
    rebind, not a problem rewrite.
    """

    kind = "memory"

    def __init__(self, problem: "WGRAPProblem") -> None:
        super().__init__()
        self._problem = problem
        self._bids: dict[tuple[str, str], float] = {}
        self._listener = None

    # -- materialisation ------------------------------------------------
    def load_problem(self) -> "WGRAPProblem":
        self.stats.loads += 1
        return self._problem

    def attach(self, problem: "WGRAPProblem") -> None:
        """Track the chain so :attr:`problem` always names the tip."""
        self._problem = problem
        if self._listener is not None:
            return
        store_ref = weakref.ref(self)

        def listener(mutation: "ProblemMutation") -> None:
            store = store_ref()
            if store is None:
                mutation.source.remove_mutation_listener(listener)
                mutation.result.remove_mutation_listener(listener)
                return
            store._problem = mutation.result
            store.stats.index_updates += 1

        self._listener = listener
        problem.add_mutation_listener(listener)

    @property
    def problem(self) -> "WGRAPProblem":
        return self._problem

    def tracks(self, problem: "WGRAPProblem") -> bool:
        return self._problem is problem

    # -- candidate generation ------------------------------------------
    def candidate_reviewers(self, paper_id: str) -> list[str]:
        # The historical scan, verbatim: every reviewer id in problem
        # order, minus the paper's conflict set.
        problem = self._problem
        forbidden = problem.conflicts.reviewers_conflicting_with(paper_id)
        self.stats.index_hits += 1
        return [rid for rid in problem.reviewer_ids if rid not in forbidden]

    def topic_candidates(
        self, vector: Any, limit: int, num_topics: int | None = None
    ) -> list[tuple[str, float]]:
        problem = self._problem
        proxy = topic_proxy_scores(problem.reviewer_matrix, vector)
        order = np.argsort(-proxy, kind="stable")[: max(0, int(limit))]
        self.stats.index_hits += 1
        reviewer_ids = problem.reviewer_ids
        return [(reviewer_ids[int(row)], float(proxy[int(row)])) for row in order]

    # -- adjacent state -------------------------------------------------
    def record_bids(self, bids: Iterable[tuple[str, str, float]]) -> int:
        triples = [(str(r), str(p), float(v)) for r, p, v in bids]
        for reviewer_id, paper_id, value in triples:
            self._bids[(reviewer_id, paper_id)] = value
        return len(triples)

    def load_bids(self) -> tuple[tuple[str, str, float], ...]:
        return tuple(
            (reviewer_id, paper_id, value)
            for (reviewer_id, paper_id), value in sorted(self._bids.items())
        )

    # -- lifecycle ------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        problem = self._problem
        return {
            **super().describe(),
            "reviewer_rows": problem.num_reviewers,
            "paper_rows": problem.num_papers,
            "conflict_rows": len(problem.conflicts),
            "bid_rows": len(self._bids),
        }
