"""Solver registries and shared experiment configuration.

The benchmark harness refers to solvers by the short names the paper uses
("SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA", ...).  This module maps
those names to configured solver instances and provides the helper that
runs several of them on the same problem and collects their results.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.problem import WGRAPProblem
from repro.cra.base import CRAResult, CRASolver
from repro.exceptions import ConfigurationError
from repro.jra.base import JRASolver
from repro.service.registry import create_solver

__all__ = [
    "ExperimentConfig",
    "DEFAULT_CRA_METHODS",
    "DEFAULT_JRA_METHODS",
    "make_cra_solver",
    "make_jra_solver",
    "run_cra_methods",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all regenerated experiments.

    Attributes
    ----------
    scale:
        Fraction of the paper's dataset sizes to generate.  The paper's C++
        implementation ran the full DBLP-derived workloads; the pure-Python
        reproduction defaults to quarter-scale instances, which preserve
        the papers-per-reviewer pressure (the workload is always set to the
        minimal feasible value) and therefore the relative ordering of the
        methods.  Pass ``scale=1.0`` to run the full sizes.
    seed:
        Seed used by the synthetic data generators.
    num_topics:
        Dimensionality of the topic vectors (30 in the paper).
    refinement_omega:
        Convergence window of the stochastic refinement (10 in the paper).
    """

    scale: float = 0.25
    seed: int = 7
    num_topics: int = 30
    refinement_omega: int = 10

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.num_topics < 3:
            raise ConfigurationError("num_topics must be at least 3")


#: CRA methods in the order the paper's tables list them
DEFAULT_CRA_METHODS: tuple[str, ...] = ("SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA")

#: JRA methods in the order the paper's figures list them
DEFAULT_JRA_METHODS: tuple[str, ...] = ("BFS", "ILP", "BBA")


def make_cra_solver(name: str, config: ExperimentConfig | None = None) -> CRASolver:
    """Instantiate a conference-assignment solver by its paper name.

    Thin wrapper over the string-keyed registry of
    :mod:`repro.service.registry` that translates the experiment
    configuration into solver options (only SDGA-SRA consumes them).
    """
    config = config or ExperimentConfig()
    return create_solver(
        "cra",
        name,
        convergence_window=config.refinement_omega,
        seed=config.seed,
    )


def make_jra_solver(name: str, time_limit: float | None = None) -> JRASolver:
    """Instantiate a journal-assignment solver by its paper name."""
    return create_solver("jra", name, time_limit=time_limit)


def run_cra_methods(
    problem: WGRAPProblem,
    methods: Sequence[str] | Iterable[str] = DEFAULT_CRA_METHODS,
    config: ExperimentConfig | None = None,
) -> dict[str, CRAResult]:
    """Run several CRA solvers on the same problem; results keyed by method name."""
    results: dict[str, CRAResult] = {}
    for method in methods:
        solver = make_cra_solver(method, config)
        results[method] = solver.solve(problem)
    return results
