"""Solver registries and shared experiment configuration.

The benchmark harness refers to solvers by the short names the paper uses
("SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA", ...).  This module maps
those names to configured solver instances and provides the helpers that
run several of them on the same problem — optionally fanning the methods
out across worker processes — and that sweep independent seeded trials
through :func:`repro.parallel.run_trials` with deterministic per-trial
seeds (a parallel sweep reproduces the serial sweep seed-for-seed).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.core.problem import WGRAPProblem
from repro.cra.base import CRAResult, CRASolver
from repro.exceptions import ConfigurationError
from repro.jra.base import JRASolver
from repro.parallel.config import ParallelConfig
from repro.parallel.trials import run_trials
from repro.service.registry import create_solver

__all__ = [
    "ExperimentConfig",
    "DEFAULT_CRA_METHODS",
    "DEFAULT_JRA_METHODS",
    "make_cra_solver",
    "make_jra_solver",
    "run_cra_methods",
    "run_seeded_trials",
]

T = TypeVar("T")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all regenerated experiments.

    Attributes
    ----------
    scale:
        Fraction of the paper's dataset sizes to generate.  The paper's C++
        implementation ran the full DBLP-derived workloads; the pure-Python
        reproduction defaults to quarter-scale instances, which preserve
        the papers-per-reviewer pressure (the workload is always set to the
        minimal feasible value) and therefore the relative ordering of the
        methods.  Pass ``scale=1.0`` to run the full sizes.
    seed:
        Seed used by the synthetic data generators.
    num_topics:
        Dimensionality of the topic vectors (30 in the paper).
    refinement_omega:
        Convergence window of the stochastic refinement (10 in the paper).
    """

    scale: float = 0.25
    seed: int = 7
    num_topics: int = 30
    refinement_omega: int = 10

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.num_topics < 3:
            raise ConfigurationError("num_topics must be at least 3")


#: CRA methods in the order the paper's tables list them
DEFAULT_CRA_METHODS: tuple[str, ...] = ("SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA")

#: JRA methods in the order the paper's figures list them
DEFAULT_JRA_METHODS: tuple[str, ...] = ("BFS", "ILP", "BBA")


def make_cra_solver(name: str, config: ExperimentConfig | None = None) -> CRASolver:
    """Instantiate a conference-assignment solver by its paper name.

    Thin wrapper over the string-keyed registry of
    :mod:`repro.service.registry` that translates the experiment
    configuration into solver options (only SDGA-SRA consumes them).
    """
    config = config or ExperimentConfig()
    return create_solver(
        "cra",
        name,
        convergence_window=config.refinement_omega,
        seed=config.seed,
    )


def make_jra_solver(name: str, time_limit: float | None = None) -> JRASolver:
    """Instantiate a journal-assignment solver by its paper name."""
    return create_solver("jra", name, time_limit=time_limit)


def _method_job(
    payload: tuple[dict[str, Any], str, ExperimentConfig],
) -> CRAResult:
    """Worker entry point: rebuild the problem and run one named method."""
    from repro.data.io import problem_from_dict

    problem_payload, method, config = payload
    return make_cra_solver(method, config).solve(problem_from_dict(problem_payload))


def run_cra_methods(
    problem: WGRAPProblem,
    methods: Sequence[str] | Iterable[str] = DEFAULT_CRA_METHODS,
    config: ExperimentConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> dict[str, CRAResult]:
    """Run several CRA solvers on the same problem; results keyed by method name.

    With a multi-worker ``parallel`` config the methods run in separate
    processes (the problem travels in its JSON dict form).  Every solver
    is seeded from the experiment config either way, so parallel runs
    return exactly the serial results.
    """
    methods = list(methods)
    config = config or ExperimentConfig()
    workers = parallel.resolved_workers() if parallel is not None else 1
    if workers > 1 and len(methods) > 1:
        from repro.data.io import problem_to_dict
        from repro.parallel.pool import pool_map

        payload = problem_to_dict(problem)
        outcomes = pool_map(
            _method_job, [(payload, method, config) for method in methods], workers
        )
        return dict(zip(methods, outcomes))
    results: dict[str, CRAResult] = {}
    for method in methods:
        solver = make_cra_solver(method, config)
        results[method] = solver.solve(problem)
    return results


def run_seeded_trials(
    trial: Callable[[int], T],
    num_trials: int,
    base_seed: int | None = None,
    config: ExperimentConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> list[T]:
    """Sweep ``trial(seed)`` over deterministically derived seeds.

    Thin experiment-facing wrapper over :func:`repro.parallel.run_trials`:
    the base seed defaults to the experiment config's seed, and per-trial
    seeds are derived stably from it, so a parallel sweep reproduces the
    serial sweep seed-for-seed whatever the worker count.
    """
    config = config or ExperimentConfig()
    return run_trials(
        trial,
        num_trials=num_trials,
        base_seed=base_seed if base_seed is not None else config.seed,
        config=parallel,
    )
