"""Solver registries and shared experiment configuration.

The benchmark harness refers to solvers by the short names the paper uses
("SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA", ...).  This module maps
those names to configured solver instances and provides the helper that
runs several of them on the same problem and collects their results.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.problem import WGRAPProblem
from repro.cra.base import CRAResult, CRASolver
from repro.cra.brgg import BestReviewerGroupGreedySolver
from repro.cra.greedy import GreedySolver
from repro.cra.ilp import PairwiseILPSolver
from repro.cra.local_search import LocalSearchRefiner, SDGAWithLocalSearchSolver
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import SDGAWithRefinementSolver, StochasticRefiner
from repro.cra.stable_matching import StableMatchingSolver
from repro.exceptions import ConfigurationError
from repro.jra.base import JRASolver
from repro.jra.bba import BranchAndBoundSolver
from repro.jra.brute_force import BruteForceSolver
from repro.jra.cp import ConstraintProgrammingSolver
from repro.jra.ilp import ILPSolver

__all__ = [
    "ExperimentConfig",
    "DEFAULT_CRA_METHODS",
    "DEFAULT_JRA_METHODS",
    "make_cra_solver",
    "make_jra_solver",
    "run_cra_methods",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all regenerated experiments.

    Attributes
    ----------
    scale:
        Fraction of the paper's dataset sizes to generate.  The paper's C++
        implementation ran the full DBLP-derived workloads; the pure-Python
        reproduction defaults to quarter-scale instances, which preserve
        the papers-per-reviewer pressure (the workload is always set to the
        minimal feasible value) and therefore the relative ordering of the
        methods.  Pass ``scale=1.0`` to run the full sizes.
    seed:
        Seed used by the synthetic data generators.
    num_topics:
        Dimensionality of the topic vectors (30 in the paper).
    refinement_omega:
        Convergence window of the stochastic refinement (10 in the paper).
    """

    scale: float = 0.25
    seed: int = 7
    num_topics: int = 30
    refinement_omega: int = 10

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.num_topics < 3:
            raise ConfigurationError("num_topics must be at least 3")


#: CRA methods in the order the paper's tables list them
DEFAULT_CRA_METHODS: tuple[str, ...] = ("SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA")

#: JRA methods in the order the paper's figures list them
DEFAULT_JRA_METHODS: tuple[str, ...] = ("BFS", "ILP", "BBA")


def make_cra_solver(name: str, config: ExperimentConfig | None = None) -> CRASolver:
    """Instantiate a conference-assignment solver by its paper name."""
    config = config or ExperimentConfig()
    key = name.strip().upper()
    if key == "SM":
        return StableMatchingSolver()
    if key == "ILP":
        return PairwiseILPSolver()
    if key == "BRGG":
        return BestReviewerGroupGreedySolver()
    if key == "GREEDY":
        return GreedySolver()
    if key == "SDGA":
        return StageDeepeningGreedySolver()
    if key in {"SDGA-SRA", "SRA"}:
        return SDGAWithRefinementSolver(
            refiner=StochasticRefiner(
                convergence_window=config.refinement_omega, seed=config.seed
            )
        )
    if key in {"SDGA-LS", "LS"}:
        return SDGAWithLocalSearchSolver(refiner=LocalSearchRefiner())
    raise ConfigurationError(
        f"unknown CRA method {name!r}; known methods: "
        f"{', '.join(DEFAULT_CRA_METHODS + ('SDGA-LS',))}"
    )


def make_jra_solver(name: str, time_limit: float | None = None) -> JRASolver:
    """Instantiate a journal-assignment solver by its paper name."""
    key = name.strip().upper()
    if key == "BFS":
        return BruteForceSolver()
    if key == "BBA":
        return BranchAndBoundSolver()
    if key == "ILP":
        return ILPSolver(time_limit=time_limit)
    if key == "CP":
        return ConstraintProgrammingSolver()
    if key == "CP-FIRST":
        return ConstraintProgrammingSolver(first_solution_only=True)
    raise ConfigurationError(
        f"unknown JRA method {name!r}; known methods: BFS, BBA, ILP, CP, CP-FIRST"
    )


def run_cra_methods(
    problem: WGRAPProblem,
    methods: Sequence[str] | Iterable[str] = DEFAULT_CRA_METHODS,
    config: ExperimentConfig | None = None,
) -> dict[str, CRAResult]:
    """Run several CRA solvers on the same problem; results keyed by method name."""
    results: dict[str, CRAResult] = {}
    for method in methods:
        solver = make_cra_solver(method, config)
        results[method] = solver.solve(problem)
    return results
