"""Case-study experiments (Figures 19-20, Tables 8-9).

The paper's case studies zoom in on a single interdisciplinary paper and
compare, method by method, how well the assigned reviewer group covers the
paper's dominant topics.  :func:`run_case_study` reproduces that analysis:
it picks the most interdisciplinary paper of a conference instance (or a
paper given by the caller), runs the requested methods, and reports the
per-topic coverage of each method's group together with the assigned
reviewer names.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import WGRAPProblem
from repro.experiments.cra_quality import build_dataset_problem
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import ExperimentConfig, run_cra_methods
from repro.metrics.analysis import PaperCoverageReport, paper_topic_coverage

__all__ = ["CaseStudyResult", "pick_interdisciplinary_paper", "run_case_study"]

#: the methods shown in the paper's case-study figures
CASE_STUDY_METHODS: tuple[str, ...] = ("ILP", "BRGG", "Greedy", "SDGA-SRA")


@dataclass
class CaseStudyResult:
    """Per-method coverage reports for one highlighted paper."""

    paper_id: str
    paper_title: str
    top_topics: tuple[int, ...]
    reports: dict[str, PaperCoverageReport] = field(default_factory=dict)

    def scores(self) -> dict[str, float]:
        """Per-method coverage score of the highlighted paper."""
        return {method: report.score for method, report in self.reports.items()}

    def to_table(self) -> ExperimentTable:
        """One row per method: score and per-topic covered weight."""
        columns = ["method", "score"] + [f"topic {topic}" for topic in self.top_topics]
        table = ExperimentTable(
            title=f"Case study — paper {self.paper_id} ({self.paper_title})",
            columns=columns,
        )
        for method, report in self.reports.items():
            by_topic = {entry.topic: entry for entry in report.topics}
            table.add_row(
                method,
                report.score,
                *[by_topic[topic].covered_weight for topic in self.top_topics],
            )
        return table

    def reviewer_table(self) -> ExperimentTable:
        """Which reviewers each method assigned to the highlighted paper."""
        table = ExperimentTable(
            title=f"Assigned reviewers — paper {self.paper_id}",
            columns=["method", "reviewers"],
        )
        for method, report in self.reports.items():
            table.add_row(method, ", ".join(report.reviewer_names))
        return table


def pick_interdisciplinary_paper(problem: WGRAPProblem) -> str:
    """The paper whose topic mass is spread over the most topics.

    Entropy of the (normalised) topic vector is used as the spread measure,
    matching the intuition of the paper's case studies, which pick papers
    touching several distinct topics.
    """
    best_paper = problem.papers[0].id
    best_entropy = -1.0
    for paper in problem.papers:
        weights = paper.vector.values
        total = weights.sum()
        if total <= 0:
            continue
        distribution = weights / total
        nonzero = distribution[distribution > 0]
        entropy = float(-(nonzero * np.log(nonzero)).sum())
        if entropy > best_entropy:
            best_entropy = entropy
            best_paper = paper.id
    return best_paper


def run_case_study(
    dataset: str = "DB08",
    group_size: int = 3,
    methods: Sequence[str] = CASE_STUDY_METHODS,
    paper_id: str | None = None,
    top_topic_count: int = 5,
    config: ExperimentConfig | None = None,
    problem: WGRAPProblem | None = None,
) -> CaseStudyResult:
    """Reproduce a Figure 19/20-style case study on a synthetic conference."""
    config = config or ExperimentConfig()
    if problem is None:
        problem = build_dataset_problem(dataset, group_size, config)
    if paper_id is None:
        paper_id = pick_interdisciplinary_paper(problem)
    paper = problem.paper_by_id(paper_id)
    top_topics = tuple(paper.vector.top_topics(top_topic_count))

    results = run_cra_methods(problem, methods, config)
    reports = {
        method: paper_topic_coverage(problem, result.assignment, paper_id)
        for method, result in results.items()
    }
    return CaseStudyResult(
        paper_id=paper_id,
        paper_title=paper.title,
        top_topics=top_topics,
        reports=reports,
    )
