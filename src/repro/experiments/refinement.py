"""Refinement experiments: SRA vs. local search and the effect of omega.

* **Figure 12** compares the optimality ratio reached by the stochastic
  refinement (SRA) and by plain local search (LS) as a function of the
  post-processing time budget, both starting from the same SDGA solution.
* **Figure 16** studies the convergence window ``omega``: larger windows
  buy slightly better quality at a steep cost in refinement time.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.problem import WGRAPProblem
from repro.cra.ideal import ideal_assignment
from repro.cra.local_search import LocalSearchRefiner
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import StochasticRefiner
from repro.experiments.cra_quality import build_dataset_problem
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import ExperimentConfig

__all__ = ["run_refinement_comparison", "run_omega_sensitivity"]


def run_refinement_comparison(
    dataset: str = "DB08",
    group_size: int = 3,
    time_budgets: Sequence[float] = (2.0, 5.0, 10.0, 20.0),
    config: ExperimentConfig | None = None,
    problem: WGRAPProblem | None = None,
) -> ExperimentTable:
    """Figure 12: optimality ratio of SDGA-SRA vs SDGA-LS per time budget.

    Both refiners start from the same SDGA assignment; each row reports the
    optimality ratio reached within the given wall-clock budget.
    """
    config = config or ExperimentConfig()
    if problem is None:
        problem = build_dataset_problem(dataset, group_size, config)
    ideal = ideal_assignment(problem)
    base = StageDeepeningGreedySolver().solve(problem)
    base_ratio = base.score / ideal.score if ideal.score > 0 else 1.0

    table = ExperimentTable(
        title=f"Refinement quality vs time — {dataset}, delta_p={group_size}",
        columns=["time budget (s)", "SDGA-SRA ratio", "SDGA-LS ratio", "SDGA ratio"],
    )
    for budget in time_budgets:
        sra = StochasticRefiner(
            convergence_window=10_000,  # let the time budget be the stopping rule
            time_budget=float(budget),
            seed=config.seed,
        )
        refined_sra, _ = sra.refine(problem, base.assignment)
        local_search = LocalSearchRefiner(max_rounds=10_000, time_budget=float(budget))
        refined_ls, _ = local_search.refine(problem, base.assignment)
        sra_ratio = (
            problem.assignment_score(refined_sra) / ideal.score if ideal.score > 0 else 1.0
        )
        ls_ratio = (
            problem.assignment_score(refined_ls) / ideal.score if ideal.score > 0 else 1.0
        )
        table.add_row(float(budget), sra_ratio, ls_ratio, base_ratio)
    return table


def run_omega_sensitivity(
    dataset: str = "DB08",
    group_size: int = 3,
    omegas: Sequence[int] = (2, 5, 10, 20, 40),
    config: ExperimentConfig | None = None,
    problem: WGRAPProblem | None = None,
) -> ExperimentTable:
    """Figure 16: quality and refinement time as a function of omega."""
    config = config or ExperimentConfig()
    if problem is None:
        problem = build_dataset_problem(dataset, group_size, config)
    ideal = ideal_assignment(problem)
    base = StageDeepeningGreedySolver().solve(problem)

    table = ExperimentTable(
        title=f"Effect of omega — {dataset}, delta_p={group_size}",
        columns=["omega", "optimality ratio", "refinement time (s)", "rounds"],
    )
    for omega in omegas:
        refiner = StochasticRefiner(convergence_window=int(omega), seed=config.seed)
        refined, stats = refiner.refine(problem, base.assignment)
        history = stats["history"]
        elapsed = history[-1].elapsed_seconds if history else 0.0
        ratio = (
            problem.assignment_score(refined) / ideal.score if ideal.score > 0 else 1.0
        )
        table.add_row(int(omega), ratio, float(elapsed), stats["rounds"])
    return table
