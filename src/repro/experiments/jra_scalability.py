"""JRA scalability experiments (Figures 9, 14, 15 and the CP comparison).

These regenerate the journal-assignment figures: the response time of BFS,
ILP and BBA as the group size ``delta_p`` or the candidate-pool size ``R``
grows, the top-k behaviour of BBA, and the comparison against a generic
constraint-programming search.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.entities import Reviewer
from repro.data.workloads import make_jra_pool, make_jra_problem
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_JRA_METHODS, make_jra_solver
from repro.jra.bba import BranchAndBoundSolver

__all__ = [
    "JRAScalabilityConfig",
    "run_group_size_scalability",
    "run_pool_size_scalability",
    "run_topk_experiment",
    "run_cp_comparison",
]


@dataclass(frozen=True)
class JRAScalabilityConfig:
    """Shared parameters of the JRA scalability experiments.

    Attributes
    ----------
    num_trials:
        How many random target papers each point is averaged over (the
        paper averages over 20 papers; the default here is smaller to keep
        the pure-Python benches quick — raise it for tighter estimates).
    num_topics:
        Topic-vector dimensionality.
    seed:
        Random seed for the candidate pool and the target papers.
    ilp_time_limit:
        Per-instance budget handed to the ILP baseline so a single slow
        point cannot stall the whole sweep.
    """

    num_trials: int = 3
    num_topics: int = 30
    seed: int = 11
    ilp_time_limit: float | None = 60.0


def _average_times(
    methods: Sequence[str],
    config: JRAScalabilityConfig,
    pool: list[Reviewer],
    num_candidates: int,
    group_size: int,
) -> dict[str, tuple[float, float]]:
    """Average (time, score) of each method over ``num_trials`` papers."""
    accumulated: dict[str, list[tuple[float, float]]] = {method: [] for method in methods}
    for trial in range(config.num_trials):
        problem = make_jra_problem(
            num_candidates=num_candidates,
            group_size=group_size,
            num_topics=config.num_topics,
            seed=config.seed + 97 * trial,
            pool=pool,
        )
        for method in methods:
            solver = make_jra_solver(method, time_limit=config.ilp_time_limit)
            result = solver.solve(problem)
            accumulated[method].append((result.elapsed_seconds, result.score))
    averages: dict[str, tuple[float, float]] = {}
    for method, samples in accumulated.items():
        times = [sample[0] for sample in samples]
        scores = [sample[1] for sample in samples]
        averages[method] = (sum(times) / len(times), sum(scores) / len(scores))
    return averages


def run_group_size_scalability(
    group_sizes: Sequence[int] = (3, 4, 5),
    num_candidates: int = 200,
    methods: Sequence[str] = DEFAULT_JRA_METHODS,
    config: JRAScalabilityConfig | None = None,
) -> ExperimentTable:
    """Figure 9(a) / 14(a): response time as the group size grows (fixed R)."""
    config = config or JRAScalabilityConfig()
    pool = make_jra_pool(
        max(num_candidates, 3), num_topics=config.num_topics, seed=config.seed
    )
    table = ExperimentTable(
        title=f"JRA response time vs group size (R={num_candidates})",
        columns=["delta_p", *[f"{method} time (s)" for method in methods],
                 *[f"{method} score" for method in methods]],
    )
    for group_size in group_sizes:
        averages = _average_times(methods, config, pool, num_candidates, group_size)
        table.add_row(
            group_size,
            *[averages[method][0] for method in methods],
            *[averages[method][1] for method in methods],
        )
    return table


def run_pool_size_scalability(
    pool_sizes: Sequence[int] = (200, 300, 400, 500),
    group_size: int = 3,
    methods: Sequence[str] = DEFAULT_JRA_METHODS,
    config: JRAScalabilityConfig | None = None,
) -> ExperimentTable:
    """Figure 9(b) / 14(b): response time as the candidate pool grows (fixed delta_p)."""
    config = config or JRAScalabilityConfig()
    pool = make_jra_pool(max(pool_sizes), num_topics=config.num_topics, seed=config.seed)
    table = ExperimentTable(
        title=f"JRA response time vs number of reviewers (delta_p={group_size})",
        columns=["R", *[f"{method} time (s)" for method in methods],
                 *[f"{method} score" for method in methods]],
    )
    for pool_size in pool_sizes:
        averages = _average_times(methods, config, pool, pool_size, group_size)
        table.add_row(
            pool_size,
            *[averages[method][0] for method in methods],
            *[averages[method][1] for method in methods],
        )
    return table


def run_topk_experiment(
    k_values: Sequence[int] = (1, 200, 400, 600, 800, 1000),
    num_candidates: int = 200,
    group_size: int = 3,
    config: JRAScalabilityConfig | None = None,
) -> ExperimentTable:
    """Figure 15: BBA response time as the number of requested groups grows."""
    config = config or JRAScalabilityConfig()
    pool = make_jra_pool(
        max(num_candidates, 3), num_topics=config.num_topics, seed=config.seed
    )
    problem = make_jra_problem(
        num_candidates=num_candidates,
        group_size=group_size,
        num_topics=config.num_topics,
        seed=config.seed,
        pool=pool,
    )
    table = ExperimentTable(
        title=f"Top-k BBA response time (R={num_candidates}, delta_p={group_size})",
        columns=["k", "BBA time (s)", "best score", "k-th score"],
    )
    for k in k_values:
        solver = BranchAndBoundSolver(top_k=max(int(k), 1))
        result = solver.solve(problem)
        shortlist = result.stats.get("top_k", [(result.reviewer_ids, result.score)])
        table.add_row(
            int(k),
            result.elapsed_seconds,
            result.score,
            float(shortlist[-1][1]),
        )
    return table


def run_cp_comparison(
    num_candidates: int = 30,
    group_size: int = 3,
    config: JRAScalabilityConfig | None = None,
) -> ExperimentTable:
    """Section 5.1's CP-solver comparison (CP optimum, CP first solution, BBA)."""
    config = config or JRAScalabilityConfig()
    pool = make_jra_pool(
        max(num_candidates, 3), num_topics=config.num_topics, seed=config.seed
    )
    problem = make_jra_problem(
        num_candidates=num_candidates,
        group_size=group_size,
        num_topics=config.num_topics,
        seed=config.seed,
        pool=pool,
    )
    table = ExperimentTable(
        title=f"CP solver vs BBA (R={num_candidates}, delta_p={group_size})",
        columns=["method", "time (s)", "score", "optimal"],
    )
    for method in ("CP", "CP-FIRST", "BBA"):
        solver = make_jra_solver(method)
        result = solver.solve(problem)
        table.add_row(method, result.elapsed_seconds, result.score, result.is_optimal)
    return table
