"""Alternative scoring functions and h-index scaling (Figure 21, Table 6).

Appendix B/C of the paper evaluate WGRAP under three alternative scoring
functions (reviewer coverage, paper coverage, dot product) and under
reviewer expertise vectors rescaled by the reviewers' h-indices.  The
conclusion — SDGA-SRA keeps its lead under every submodular objective — is
reproduced here by re-running the quality experiment with the scoring
function (or the reviewer vectors) swapped out.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.entities import Paper, Reviewer
from repro.core.scoring import available_scoring_functions, get_scoring_function
from repro.core.vectors import TopicVector
from repro.data.workloads import scale_reviewers_by_h_index
from repro.experiments.cra_quality import CRAQualityResult, build_dataset_problem, run_cra_quality
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_CRA_METHODS, ExperimentConfig

__all__ = [
    "run_scoring_ablation",
    "run_h_index_scaling",
    "scoring_toy_example",
]


def run_scoring_ablation(
    scoring: str,
    dataset: str = "DB08",
    group_size: int = 3,
    methods: Sequence[str] = DEFAULT_CRA_METHODS,
    config: ExperimentConfig | None = None,
) -> CRAQualityResult:
    """Figure 21(a-c): the quality experiment under an alternative objective."""
    config = config or ExperimentConfig()
    problem = build_dataset_problem(dataset, group_size, config, scoring=scoring)
    return run_cra_quality(
        dataset=f"{dataset}[{scoring}]",
        group_size=group_size,
        methods=methods,
        config=config,
        problem=problem,
    )


def run_h_index_scaling(
    dataset: str = "DB08",
    group_size: int = 3,
    methods: Sequence[str] = DEFAULT_CRA_METHODS,
    config: ExperimentConfig | None = None,
) -> CRAQualityResult:
    """Figure 21(d): the quality experiment with h-index-scaled expertise."""
    config = config or ExperimentConfig()
    problem = build_dataset_problem(dataset, group_size, config)
    scaled = scale_reviewers_by_h_index(problem)
    return run_cra_quality(
        dataset=f"{dataset}[h-index]",
        group_size=group_size,
        methods=methods,
        config=config,
        problem=scaled,
    )


def scoring_toy_example() -> ExperimentTable:
    """Table 6: the two-reviewer toy example under all four scoring functions.

    The table reproduces the paper's observation that weighted coverage is
    the only function preferring the well-matched reviewer ``r2`` over the
    narrowly-expert ``r1``.
    """
    paper = Paper(id="toy-paper", vector=TopicVector([0.6, 0.4]))
    reviewers = [
        Reviewer(id="r1", vector=TopicVector([0.9, 0.1])),
        Reviewer(id="r2", vector=TopicVector([0.5, 0.5])),
    ]
    table = ExperimentTable(
        title="Table 6: toy example under the four scoring functions",
        columns=["scoring function", "score(r1, p)", "score(r2, p)", "preferred"],
    )
    for name in available_scoring_functions():
        scoring = get_scoring_function(name)
        first = scoring.score(reviewers[0].vector, paper.vector)
        second = scoring.score(reviewers[1].vector, paper.vector)
        preferred = "r1" if first > second else "r2" if second > first else "tie"
        table.add_row(name, first, second, preferred)
    return table
