"""Conference-assignment quality experiments.

Regenerates the quality-oriented figures and tables of Section 5.2:

* **Table 4** — response time of the approximate methods.
* **Figure 10 / 17 / 18** — optimality ratio against the ideal assignment.
* **Figure 11** — superiority ratio of SDGA-SRA over the competitors.
* **Table 7** — lowest per-paper coverage score.

Every run produces a :class:`CRAQualityResult` from which all four views
can be printed, so the expensive part (running all solvers) happens once
per dataset and group size.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.problem import WGRAPProblem
from repro.cra.base import CRAResult
from repro.cra.ideal import IdealAssignment, ideal_assignment
from repro.data.synthetic import SyntheticWorkloadGenerator
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_CRA_METHODS, ExperimentConfig, run_cra_methods
from repro.metrics.quality import lowest_coverage_score, superiority_ratio
from repro.parallel.config import ParallelConfig

__all__ = ["CRAQualityResult", "run_cra_quality", "build_dataset_problem"]


@dataclass
class CRAQualityResult:
    """All method results for one (dataset, group size) configuration."""

    dataset: str
    group_size: int
    problem: WGRAPProblem
    ideal: IdealAssignment
    results: dict[str, CRAResult] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Views over the results
    # ------------------------------------------------------------------
    def optimality_ratios(self) -> dict[str, float]:
        """``c(A)/c(AI)`` per method (Figure 10 / 17 / 18)."""
        if self.ideal.score <= 0:
            return {method: 1.0 for method in self.results}
        return {
            method: result.score / self.ideal.score
            for method, result in self.results.items()
        }

    def response_times(self) -> dict[str, float]:
        """Wall-clock seconds per method (Table 4)."""
        return {method: result.elapsed_seconds for method, result in self.results.items()}

    def lowest_coverage(self) -> dict[str, float]:
        """Worst per-paper coverage per method (Table 7)."""
        return {
            method: lowest_coverage_score(self.problem, result.assignment)
            for method, result in self.results.items()
        }

    def superiority_of(self, reference: str = "SDGA-SRA") -> dict[str, dict[str, float]]:
        """Superiority ratio of ``reference`` over every other method (Figure 11)."""
        reference_result = self.results[reference]
        breakdowns: dict[str, dict[str, float]] = {}
        for method, result in self.results.items():
            if method == reference:
                continue
            breakdown = superiority_ratio(
                self.problem, reference_result.assignment, result.assignment
            )
            breakdowns[method] = {
                "superiority": breakdown.superiority,
                "strict": breakdown.strict_superiority,
                "ties": breakdown.tie_ratio,
            }
        return breakdowns

    # ------------------------------------------------------------------
    # Table renderings
    # ------------------------------------------------------------------
    def optimality_table(self) -> ExperimentTable:
        """The Figure 10-style table for this configuration."""
        table = ExperimentTable(
            title=f"Optimality ratio — {self.dataset}, delta_p={self.group_size}",
            columns=["method", "optimality ratio", "coverage score"],
        )
        ratios = self.optimality_ratios()
        for method, result in self.results.items():
            table.add_row(method, ratios[method], result.score)
        return table

    def timing_table(self) -> ExperimentTable:
        """The Table 4-style table for this configuration."""
        table = ExperimentTable(
            title=f"Response time — {self.dataset}, delta_p={self.group_size}",
            columns=["method", "time (s)"],
        )
        for method, seconds in self.response_times().items():
            table.add_row(method, seconds)
        return table

    def superiority_table(self, reference: str = "SDGA-SRA") -> ExperimentTable:
        """The Figure 11-style table for this configuration."""
        table = ExperimentTable(
            title=(
                f"Superiority of {reference} — {self.dataset}, delta_p={self.group_size}"
            ),
            columns=["versus", "superiority ratio", "strict wins", "ties"],
        )
        for method, breakdown in self.superiority_of(reference).items():
            table.add_row(
                method, breakdown["superiority"], breakdown["strict"], breakdown["ties"]
            )
        return table

    def lowest_coverage_table(self) -> ExperimentTable:
        """The Table 7-style table for this configuration."""
        table = ExperimentTable(
            title=f"Lowest coverage score — {self.dataset}, delta_p={self.group_size}",
            columns=["method", "lowest coverage"],
        )
        for method, value in self.lowest_coverage().items():
            table.add_row(method, value)
        return table


def build_dataset_problem(
    dataset: str,
    group_size: int,
    config: ExperimentConfig | None = None,
    scoring: str | None = None,
) -> WGRAPProblem:
    """Generate the (scaled) synthetic stand-in for one Table 3 dataset."""
    config = config or ExperimentConfig()
    generator = SyntheticWorkloadGenerator(num_topics=config.num_topics, seed=config.seed)
    return generator.generate_dataset(
        dataset, scale=config.scale, group_size=group_size, scoring=scoring
    )


def run_cra_quality(
    dataset: str = "DB08",
    group_size: int = 3,
    methods: Sequence[str] = DEFAULT_CRA_METHODS,
    config: ExperimentConfig | None = None,
    problem: WGRAPProblem | None = None,
    parallel: "ParallelConfig | None" = None,
) -> CRAQualityResult:
    """Run all requested methods on one dataset/group-size configuration.

    ``parallel`` fans the methods out across worker processes (seeded
    solvers make the results identical to a serial run).
    """
    config = config or ExperimentConfig()
    if problem is None:
        problem = build_dataset_problem(dataset, group_size, config)
    ideal = ideal_assignment(problem)
    results = run_cra_methods(problem, methods, config, parallel=parallel)
    return CRAQualityResult(
        dataset=dataset,
        group_size=group_size,
        problem=problem,
        ideal=ideal,
        results=results,
    )
