"""Small reporting helpers shared by the experiment harness.

Experiments produce :class:`ExperimentTable` objects — named columns plus a
list of rows — which render to aligned plain text (what the benchmark
harness prints, mirroring the rows/series of the paper's tables and
figures) and to CSV for further processing.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["ExperimentTable", "format_seconds", "format_ratio"]


def format_seconds(value: float) -> str:
    """Human-friendly rendering of a duration in seconds."""
    if value < 0:
        raise ConfigurationError("durations cannot be negative")
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    if value < 120.0:
        return f"{value:.2f}s"
    return f"{value / 60.0:.1f}min"


def format_ratio(value: float) -> str:
    """Render a ratio in the paper's percentage style (e.g. ``97.3%``)."""
    return f"{value * 100.0:.1f}%"


@dataclass
class ExperimentTable:
    """A titled table of experiment results.

    Attributes
    ----------
    title:
        Table caption (e.g. ``"Figure 10(a): optimality ratio, Databases"``).
    columns:
        Column headers.
    rows:
        Row values; each row must have one cell per column.
    """

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row (must match the number of columns)."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells but the table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column, by header name."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise ConfigurationError(f"unknown column {name!r}") from None
        return [row[index] for row in self.rows]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Aligned plain-text rendering (what the benches print)."""
        rendered_rows = [[_render(cell) for cell in row] for row in self.rows]
        headers = [str(column) for column in self.columns]
        widths = [
            max(len(headers[index]), *(len(row[index]) for row in rendered_rows))
            if rendered_rows
            else len(headers[index])
            for index in range(len(headers))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
        for row in rendered_rows:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (no quoting; cells must not contain commas)."""
        lines = [",".join(str(column) for column in self.columns)]
        for row in self.rows:
            lines.append(",".join(_render(cell) for cell in row))
        return "\n".join(lines)

    def save_csv(self, path: str | Path) -> Path:
        """Write the CSV rendering to a file and return the path."""
        path = Path(path)
        path.write_text(self.to_csv() + "\n", encoding="utf-8")
        return path

    def __str__(self) -> str:
        return self.to_text()


def _render(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def merge_tables(title: str, tables: Iterable[ExperimentTable]) -> ExperimentTable:
    """Concatenate tables that share the same columns under a new title."""
    tables = list(tables)
    if not tables:
        raise ConfigurationError("merge_tables needs at least one table")
    columns = list(tables[0].columns)
    for table in tables:
        if list(table.columns) != columns:
            raise ConfigurationError("all merged tables must share the same columns")
    merged = ExperimentTable(title=title, columns=columns)
    for table in tables:
        for row in table.rows:
            merged.add_row(*row)
    return merged
