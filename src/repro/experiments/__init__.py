"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.case_study import (
    CASE_STUDY_METHODS,
    CaseStudyResult,
    pick_interdisciplinary_paper,
    run_case_study,
)
from repro.experiments.cra_quality import (
    CRAQualityResult,
    build_dataset_problem,
    run_cra_quality,
)
from repro.experiments.jra_scalability import (
    JRAScalabilityConfig,
    run_cp_comparison,
    run_group_size_scalability,
    run_pool_size_scalability,
    run_topk_experiment,
)
from repro.experiments.refinement import run_omega_sensitivity, run_refinement_comparison
from repro.experiments.reporting import ExperimentTable, format_ratio, format_seconds
from repro.experiments.runner import (
    DEFAULT_CRA_METHODS,
    DEFAULT_JRA_METHODS,
    ExperimentConfig,
    make_cra_solver,
    make_jra_solver,
    run_cra_methods,
)
from repro.experiments.scoring_ablation import (
    run_h_index_scaling,
    run_scoring_ablation,
    scoring_toy_example,
)

__all__ = [
    "CASE_STUDY_METHODS",
    "CaseStudyResult",
    "pick_interdisciplinary_paper",
    "run_case_study",
    "CRAQualityResult",
    "build_dataset_problem",
    "run_cra_quality",
    "JRAScalabilityConfig",
    "run_cp_comparison",
    "run_group_size_scalability",
    "run_pool_size_scalability",
    "run_topk_experiment",
    "run_omega_sensitivity",
    "run_refinement_comparison",
    "ExperimentTable",
    "format_ratio",
    "format_seconds",
    "DEFAULT_CRA_METHODS",
    "DEFAULT_JRA_METHODS",
    "ExperimentConfig",
    "make_cra_solver",
    "make_jra_solver",
    "run_cra_methods",
    "run_h_index_scaling",
    "run_scoring_ablation",
    "scoring_toy_example",
]
