"""Sensitivity experiments (extensions of the paper's evaluation).

The paper fixes the number of topics to ``T = 30`` ("treated as a constant
in this work") and evaluates on real conference mixes.  Two natural
questions a user of the library asks next are answered here:

* **Topic granularity** — how does the gap between group-based methods
  (SDGA/SDGA-SRA) and pair-based baselines (SM) change as the topic space
  gets finer?  Finer topics make papers harder to cover with a single
  reviewer, so the group-based objective should matter more.
* **Interdisciplinarity** — the paper's motivation rests on
  interdisciplinary papers needing complementary reviewer groups; this
  sweep varies the fraction of interdisciplinary submissions and measures
  the same gap.

Both experiments reuse the synthetic workload generator and the standard
quality metrics, and are exposed through
``benchmarks/bench_sensitivity.py``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cra.ideal import ideal_assignment
from repro.data.synthetic import SyntheticWorkloadGenerator
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import ExperimentConfig, run_cra_methods

__all__ = ["run_topic_granularity_sweep", "run_interdisciplinarity_sweep"]

_DEFAULT_METHODS = ("SM", "Greedy", "SDGA", "SDGA-SRA")


def _gap_row(problem, methods, config):
    """Optimality ratios of the requested methods plus the SM→SDGA-SRA gap."""
    reference = ideal_assignment(problem)
    results = run_cra_methods(problem, methods, config)
    ratios = {
        method: (result.score / reference.score if reference.score > 0 else 1.0)
        for method, result in results.items()
    }
    ratios["group_gap"] = ratios["SDGA-SRA"] - ratios["SM"]
    return ratios


def run_topic_granularity_sweep(
    topic_counts: Sequence[int] = (10, 20, 30, 45),
    num_papers: int = 60,
    num_reviewers: int = 20,
    group_size: int = 3,
    methods: Sequence[str] = _DEFAULT_METHODS,
    config: ExperimentConfig | None = None,
) -> ExperimentTable:
    """Optimality ratios as the number of topics ``T`` grows."""
    config = config or ExperimentConfig()
    table = ExperimentTable(
        title="Sensitivity: topic granularity (T)",
        columns=["T", *methods, "SDGA-SRA minus SM"],
    )
    for num_topics in topic_counts:
        generator = SyntheticWorkloadGenerator(num_topics=int(num_topics), seed=config.seed)
        problem = generator.generate_problem(
            num_papers=num_papers,
            num_reviewers=num_reviewers,
            group_size=group_size,
        )
        ratios = _gap_row(problem, methods, config)
        table.add_row(int(num_topics), *[ratios[m] for m in methods], ratios["group_gap"])
    return table


def run_interdisciplinarity_sweep(
    ratios_of_interdisciplinary_papers: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    num_papers: int = 60,
    num_reviewers: int = 20,
    group_size: int = 3,
    methods: Sequence[str] = _DEFAULT_METHODS,
    config: ExperimentConfig | None = None,
) -> ExperimentTable:
    """Optimality ratios as more submissions become interdisciplinary."""
    config = config or ExperimentConfig()
    table = ExperimentTable(
        title="Sensitivity: fraction of interdisciplinary submissions",
        columns=["interdisciplinary ratio", *methods, "SDGA-SRA minus SM"],
    )
    generator = SyntheticWorkloadGenerator(num_topics=config.num_topics, seed=config.seed)
    for fraction in ratios_of_interdisciplinary_papers:
        problem = generator.generate_problem(
            num_papers=num_papers,
            num_reviewers=num_reviewers,
            group_size=group_size,
            interdisciplinary_ratio=float(fraction),
        )
        ratios = _gap_row(problem, methods, config)
        table.add_row(float(fraction), *[ratios[m] for m in methods], ratios["group_gap"])
    return table
