"""Crash safety for resident tenants: write-ahead logging + checkpoints.

``repro.durability`` makes a :mod:`repro.net` tenant survive its process:
every admitted mutation is journaled to a per-tenant write-ahead log
*before* it executes (:mod:`repro.durability.wal`), engine state is
periodically checkpointed via atomic snapshot rotation, and recovery is
"load last checkpoint, replay the WAL tail"
(:mod:`repro.durability.journal`) — pinned bitwise-equal to a
never-crashed oracle by ``tests/conformance/test_recovery_conformance.py``.
See ``docs/durability.md`` for the record format, fsync policy matrix
and recovery semantics.
"""

from repro.durability.journal import (
    CHECKPOINT_VERSION,
    DurabilityConfig,
    RecoveryOutcome,
    RecoveryStats,
    TenantJournal,
    read_checkpoint,
)
from repro.durability.wal import (
    FSYNC_POLICIES,
    WAL_RECORD_VERSION,
    WalReadResult,
    WalRecord,
    WriteAheadLog,
    decode_line,
    encode_record,
    read_wal,
    segment_paths,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "DurabilityConfig",
    "FSYNC_POLICIES",
    "RecoveryOutcome",
    "RecoveryStats",
    "TenantJournal",
    "WAL_RECORD_VERSION",
    "WalReadResult",
    "WalRecord",
    "WriteAheadLog",
    "decode_line",
    "encode_record",
    "read_checkpoint",
    "read_wal",
    "segment_paths",
]
