"""Per-tenant write-ahead log: JSON-lines segments with checksums.

One WAL record is one JSON line, written *before* the mutation it
describes executes.  The format is deliberately boring:

``{"cseq": ..., "crc": ..., "kind": ..., "request": {...}, "seq": ..., "v": 1}``

* ``seq`` — the tenant's execution sequence number (strictly ascending);
* ``kind`` — the request kind, for humans reading the log;
* ``cseq`` — the client-supplied idempotency key (the wire ``seq``
  envelope field), ``null`` when the client sent none;
* ``request`` — the full wire-format request dict
  (:func:`repro.service.requests.request_to_dict`), so replay goes
  through the exact same parse + dispatch path as live traffic;
* ``crc`` — CRC-32 of the record's canonical JSON encoding (sorted
  keys, no whitespace) with ``crc`` removed;
* ``v`` — record format version.

A record is *complete* iff its line ends in ``\\n``, parses as JSON,
passes the CRC, carries the expected version, and its ``seq`` ascends.
:func:`read_wal` stops at the first incomplete record and reports every
byte from there on as ``dropped`` — a crash mid-append (torn tail) is an
expected, recoverable state, never an exception.

Fsync policy (:data:`FSYNC_POLICIES`) decides when appended records are
forced to disk; segments rotate at checkpoints so the WAL never grows
past one checkpoint interval.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.exceptions import ConfigurationError
from repro.fault import get_failpoints
from repro.obs.metrics import get_registry

__all__ = [
    "FSYNC_POLICIES",
    "WAL_RECORD_VERSION",
    "WalRecord",
    "WalReadResult",
    "WriteAheadLog",
    "encode_record",
    "decode_line",
    "read_wal",
    "segment_paths",
]

WAL_RECORD_VERSION = 1

#: When appended WAL records are forced to disk.  ``docs/durability.md``
#: renders this matrix and ``tests/test_docs.py`` pins the two in sync.
FSYNC_POLICIES: dict[str, str] = {
    "never": (
        "flush to the OS page cache per record, never fsync — survives "
        "process crashes, loses the tail on power loss"
    ),
    "batch": (
        "flush per record, one fsync per served batch — survives process "
        "crashes, bounds power-loss exposure to one batch (the default)"
    ),
    "always": (
        "fsync after every record — survives power loss at the last "
        "acknowledged mutation, at the cost of one fsync per mutation"
    ),
}

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"


@dataclass(frozen=True)
class WalRecord:
    """One journaled mutation (see the module docstring for the format)."""

    seq: int
    kind: str
    request: dict[str, Any]
    client_seq: int | None = None

    def to_body(self) -> dict[str, Any]:
        return {
            "v": WAL_RECORD_VERSION,
            "seq": self.seq,
            "kind": self.kind,
            "cseq": self.client_seq,
            "request": self.request,
        }


@dataclass(frozen=True)
class WalReadResult:
    """What :func:`read_wal` found on disk."""

    records: tuple[WalRecord, ...]
    dropped_bytes: int
    segments: int


def _canonical(body: dict[str, Any]) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def encode_record(record: WalRecord) -> bytes:
    """Serialise one record to its on-disk line (including the newline)."""
    body = record.to_body()
    body["crc"] = zlib.crc32(_canonical(body).encode("utf-8"))
    return (_canonical(body) + "\n").encode("utf-8")


def decode_line(line: bytes) -> WalRecord | None:
    """Parse one on-disk line; ``None`` for anything incomplete or corrupt."""
    if not line.endswith(b"\n"):
        return None
    try:
        body = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(body, dict):
        return None
    crc = body.pop("crc", None)
    if crc != zlib.crc32(_canonical(body).encode("utf-8")):
        return None
    if body.get("v") != WAL_RECORD_VERSION:
        return None
    seq = body.get("seq")
    request = body.get("request")
    if not isinstance(seq, int) or isinstance(seq, bool) or not isinstance(request, dict):
        return None
    client_seq = body.get("cseq")
    if client_seq is not None and (not isinstance(client_seq, int) or isinstance(client_seq, bool)):
        return None
    return WalRecord(
        seq=seq,
        kind=str(body.get("kind", "")),
        request=request,
        client_seq=client_seq,
    )


def segment_paths(directory: str | Path) -> list[Path]:
    """The WAL segment files under ``directory``, oldest first."""
    return sorted(Path(directory).glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))


def read_wal(directory: str | Path) -> WalReadResult:
    """Read every complete record from the segments under ``directory``.

    Stops at the first incomplete/corrupt/out-of-order record: everything
    from that point on — including whole later segments — counts as
    ``dropped_bytes``.  Never raises on torn data; an unreadable byte
    stream is just a shorter history.
    """
    paths = segment_paths(directory)
    records: list[WalRecord] = []
    dropped = 0
    last_seq: int | None = None
    broken = False
    for path in paths:
        data = path.read_bytes()
        if broken:
            dropped += len(data)
            continue
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            chunk = data[offset:] if newline < 0 else data[offset : newline + 1]
            record = decode_line(chunk)
            if record is None or (last_seq is not None and record.seq <= last_seq):
                broken = True
                dropped += len(data) - offset
                break
            records.append(record)
            last_seq = record.seq
            offset += len(chunk)
    return WalReadResult(
        records=tuple(records), dropped_bytes=dropped, segments=len(paths)
    )


class WriteAheadLog:
    """Appends records to the current segment under one directory.

    Not thread-safe by itself: each tenant owns one instance and touches
    it only from its single worker thread (plus lifecycle calls made
    while the worker is quiesced).
    """

    def __init__(self, directory: str | Path, fsync: str = "batch") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"unknown fsync policy {fsync!r}; known policies: "
                f"{sorted(FSYNC_POLICIES)}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._file: Any | None = None
        self._path: Path | None = None
        self._dirty = False
        registry = get_registry()
        self._records = registry.counter(
            "durability.wal.records", "WAL records appended"
        )
        self._bytes = registry.counter(
            "durability.wal.bytes", "WAL bytes appended"
        )
        self._fsyncs = registry.counter(
            "durability.wal.fsyncs", "fsync calls issued by the WAL"
        )

    @staticmethod
    def segment_name(start_seq: int) -> str:
        return f"{_SEGMENT_PREFIX}{start_seq:012d}{_SEGMENT_SUFFIX}"

    @property
    def current_segment(self) -> Path | None:
        return self._path

    def open_segment(self, start_seq: int) -> Path:
        """Open (append mode) the segment that starts at ``start_seq``."""
        self.close()
        self._path = self.directory / self.segment_name(start_seq)
        self._file = open(self._path, "ab")
        return self._path

    def append(self, record: WalRecord) -> None:
        """Write one record; durability depends on the fsync policy."""
        if self._file is None:
            raise ConfigurationError("write-ahead log has no open segment")
        get_failpoints().hit("wal_append")
        data = encode_record(record)
        self._file.write(data)
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())
            self._fsyncs.inc()
        else:
            self._dirty = True
        self._records.inc()
        self._bytes.inc(len(data))

    def sync(self) -> None:
        """Batch-boundary fsync (a no-op under ``never`` and ``always``)."""
        if self.fsync == "batch" and self._dirty and self._file is not None:
            os.fsync(self._file.fileno())
            self._fsyncs.inc()
            self._dirty = False

    def rotate(self, start_seq: int) -> Path:
        """Start a fresh segment and delete the older ones.

        Called right after a checkpoint: records up to ``start_seq - 1``
        are covered by the snapshot.  Crashing between the checkpoint
        write and this rotation is safe — replay skips records at or
        below the checkpoint's ``last_seq``.
        """
        path = self.open_segment(start_seq)
        for stale in segment_paths(self.directory):
            if stale != path:
                stale.unlink(missing_ok=True)
        return path

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None
                self._path = None
                self._dirty = False
