"""Offline WAL-root inspection — the ``wgrap wal`` subcommand's engine.

Read-only: walks a ``--wal-dir`` root the same way recovery and the
replication sender do (checkpoint + every complete WAL record, torn
tails counted as ``dropped_bytes``, never raised) and summarises what a
failed failover post-mortem needs: per-tenant checkpoint seq, last
journaled seq, segment list, record counts by kind, and how many bytes
of torn tail a crash left behind.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.durability.journal import read_checkpoint
from repro.durability.wal import read_wal, segment_paths

__all__ = ["inspect_root", "inspect_tenant"]


def inspect_tenant(directory: str | Path) -> dict[str, Any]:
    """Summarise one tenant journal directory (checkpoint + WAL scan)."""
    directory = Path(directory)
    checkpoint = read_checkpoint(directory)
    scan = read_wal(directory)
    checkpoint_seq = int(checkpoint["last_seq"]) if checkpoint is not None else None
    last_seq = checkpoint_seq or 0
    kinds: dict[str, int] = {}
    for record in scan.records:
        last_seq = max(last_seq, record.seq)
        kinds[record.kind] = kinds.get(record.kind, 0) + 1
    return {
        "tenant": directory.name,
        "directory": str(directory),
        "has_checkpoint": checkpoint is not None,
        "checkpoint_seq": checkpoint_seq,
        "applied_keys": (
            len(checkpoint.get("applied", [])) if checkpoint is not None else 0
        ),
        "last_seq": last_seq if (checkpoint is not None or scan.records) else None,
        "segments": [path.name for path in segment_paths(directory)],
        "records": len(scan.records),
        "kinds": dict(sorted(kinds.items())),
        "dropped_bytes": scan.dropped_bytes,
    }


def inspect_root(root: str | Path) -> dict[str, Any]:
    """Summarise every tenant journal under a WAL root, sorted by id."""
    root = Path(root)
    tenants: dict[str, Any] = {}
    if root.exists():
        for directory in sorted(root.iterdir()):
            if not directory.is_dir():
                continue
            entry = inspect_tenant(directory)
            if entry["has_checkpoint"] or entry["segments"]:
                tenants[directory.name] = entry
    return {"root": str(root), "tenants": tenants}
