"""Per-tenant durability: checkpoint + WAL tail = crash-safe engine state.

A :class:`TenantJournal` owns one directory, ``<wal_root>/<tenant_id>/``::

    checkpoint.json        # atomic snapshot: engine state + applied map
    wal-000000000042.jsonl # the current WAL segment (starts at seq 42)

The invariant, pinned by ``tests/conformance/test_recovery_conformance.py``:

    engine state == replay(checkpoint.snapshot, WAL records with
    seq > checkpoint.last_seq)

at *every* instant, because every journaled mutation is appended to the
WAL **before** it executes, and the checkpoint is written atomically
(:func:`repro.data.io.atomic_write_text`) from the tenant's quiesced
worker thread.  Recovery therefore never sees a half-applied mutation:
either the record made it to the log (and replay re-executes it) or it
didn't (and the client never got an answer, so its retry re-submits it).

The checkpoint also persists the **applied map** — the last response per
client idempotency key (wire ``seq``) — and replay rebuilds it from the
WAL tail, so a mutation retried across a crash is answered from the
stored response instead of executing twice (exactly-once application).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.data.io import (
    assignment_from_dict,
    assignment_to_dict,
    atomic_write_text,
    engine_snapshot_from_dict,
)
from repro.durability.wal import (
    FSYNC_POLICIES,
    WalRecord,
    WriteAheadLog,
    read_wal,
)
from repro.exceptions import ConfigurationError, UnsupportedFormatError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.parallel.config import ParallelConfig
from repro.service.engine import AssignmentEngine
from repro.service.requests import (
    Request,
    Response,
    request_from_dict,
    request_to_dict,
)
from repro.service.session import EngineSession

import json

__all__ = [
    "CHECKPOINT_VERSION",
    "DurabilityConfig",
    "RecoveryStats",
    "RecoveryOutcome",
    "TenantJournal",
    "read_checkpoint",
]

CHECKPOINT_VERSION = 1
CHECKPOINT_NAME = "checkpoint.json"

TRACER = get_tracer()


@dataclass(frozen=True)
class DurabilityConfig:
    """How a server journals its tenants (one config for all of them)."""

    root: Path
    fsync: str = "batch"
    checkpoint_every: int = 64
    applied_limit: int = 1024

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))
        if self.fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"unknown fsync policy {self.fsync!r}; known policies: "
                f"{sorted(FSYNC_POLICIES)}"
            )
        if int(self.checkpoint_every) < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        if int(self.applied_limit) < 1:
            raise ConfigurationError("applied_limit must be >= 1")


@dataclass
class RecoveryStats:
    """What one :meth:`TenantJournal.recover` run found and did."""

    tenant: str
    checkpoint_seq: int
    last_seq: int
    replayed_records: int = 0
    skipped_records: int = 0
    dropped_bytes: int = 0
    restored_applied: int = 0
    segments: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "checkpoint_seq": self.checkpoint_seq,
            "last_seq": self.last_seq,
            "replayed_records": self.replayed_records,
            "skipped_records": self.skipped_records,
            "dropped_bytes": self.dropped_bytes,
            "restored_applied": self.restored_applied,
            "segments": self.segments,
        }


@dataclass
class RecoveryOutcome:
    """A rebuilt engine plus everything the tenant needs to resume."""

    engine: AssignmentEngine
    session: EngineSession
    replayed: dict[int, Response] = field(default_factory=dict)
    stats: RecoveryStats | None = None

    @property
    def next_seq(self) -> int:
        return (self.stats.last_seq if self.stats is not None else 0) + 1


class TenantJournal:
    """The durable half of one tenant (checkpoint file + WAL).

    Single-writer: all mutating calls happen on the tenant's worker
    thread or while that worker is quiesced (creation, close, recovery).
    """

    def __init__(self, config: DurabilityConfig, tenant_id: str) -> None:
        if not tenant_id or "/" in tenant_id or tenant_id in {".", ".."}:
            raise ConfigurationError(
                f"tenant id {tenant_id!r} cannot name a journal directory"
            )
        self.config = config
        self.tenant_id = tenant_id
        self.directory = config.root / tenant_id
        self.checkpoint_path = self.directory / CHECKPOINT_NAME
        self.last_seq = 0
        self.applied: dict[int, Response] = {}
        self._records_since_checkpoint = 0
        self._wal: WriteAheadLog | None = None
        # Replication hook: called with (record, prev_seq) right after an
        # append, on the same worker thread — prev_seq is the journal's
        # last_seq *before* this record, i.e. the record's predecessor in
        # the tenant's WAL chain (envelope seqs may skip numbers: queries
        # and dedup hits consume a seq without appending).  Must never
        # raise into the write path; failures are the shipper's problem,
        # not the journal's.
        self.on_append: Any = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def has_checkpoint(self) -> bool:
        return self.checkpoint_path.exists()

    def initialise(self, engine: AssignmentEngine) -> None:
        """Create the journal for a brand-new tenant (checkpoint 0)."""
        if self.has_checkpoint():
            raise ConfigurationError(
                f"journal for tenant {self.tenant_id!r} already exists at "
                f"{self.directory}"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self._write_checkpoint(engine)
        self._open_wal()

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def abort(self) -> None:
        """Crash-stop: drop the file handle with no checkpoint (tests)."""
        self.close()

    # ------------------------------------------------------------------
    # The write path (tenant worker thread)
    # ------------------------------------------------------------------
    def append(self, seq: int, request: Request) -> None:
        """Journal one admitted mutation *before* it executes."""
        self.append_record(
            WalRecord(
                seq=seq,
                kind=request.kind,
                request=request_to_dict(request),
                client_seq=request.client_seq,
            )
        )

    def append_record(self, record: WalRecord) -> None:
        """Append a pre-built record (local write path and standby replay)."""
        if self._wal is None:
            raise ConfigurationError(
                f"journal for tenant {self.tenant_id!r} is not open"
            )
        prev_seq = self.last_seq
        self._wal.append(record)
        self.last_seq = record.seq
        self._records_since_checkpoint += 1
        if self.on_append is not None:
            try:
                self.on_append(record, prev_seq)
            except Exception:  # pragma: no cover - shipper must not kill writes
                pass

    def record_applied(self, client_seq: int, response: Response) -> None:
        """Remember the response for an idempotency key (bounded map)."""
        self.applied[client_seq] = response
        limit = int(self.config.applied_limit)
        evicted = 0
        while len(self.applied) > limit:
            self.applied.pop(next(iter(self.applied)))
            evicted += 1
        if evicted:
            get_registry().counter(
                "durability.applied_evicted",
                "idempotency keys evicted from the bounded applied map",
            ).inc(evicted)

    def sync_batch(self) -> None:
        """Batch-boundary fsync per the configured policy."""
        if self._wal is not None:
            self._wal.sync()

    @property
    def should_checkpoint(self) -> bool:
        return self._records_since_checkpoint >= int(self.config.checkpoint_every)

    def checkpoint(self, engine: AssignmentEngine) -> None:
        """Atomically snapshot the engine, then rotate the WAL."""
        with TRACER.span(
            "durability.checkpoint", tenant=self.tenant_id, last_seq=self.last_seq
        ):
            self._write_checkpoint(engine)
            if self._wal is None:
                self._wal = WriteAheadLog(self.directory, fsync=self.config.fsync)
            self._wal.rotate(self.last_seq + 1)
        self._records_since_checkpoint = 0
        get_registry().counter(
            "durability.checkpoints", "tenant checkpoints written"
        ).inc()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def install_checkpoint(self, payload: dict[str, Any]) -> None:
        """Adopt a checkpoint shipped from another process (standby catch-up).

        Writes the payload atomically as this journal's checkpoint and
        discards any local WAL segments — they describe a history the
        shipped snapshot supersedes.  Follow with :meth:`recover` to
        build the resident engine from the installed state.
        """
        version = payload.get("format_version")
        if version != CHECKPOINT_VERSION:
            raise UnsupportedFormatError("tenant checkpoint", version, CHECKPOINT_VERSION)
        if "store" in payload:
            # A store-backed checkpoint is a pointer to a local SQLite
            # file the standby does not have; shipping it would replicate
            # the pointer, not the data.  Store-backed tenants are
            # explicitly outside the replication contract (docs/storage.md).
            raise ConfigurationError(
                "store-backed tenants cannot be replicated by checkpoint "
                "shipping; the problem store file lives outside the journal"
            )
        self.close()
        self.directory.mkdir(parents=True, exist_ok=True)
        body = dict(payload)
        body["tenant"] = self.tenant_id
        atomic_write_text(self.checkpoint_path, json.dumps(body))
        for stale in sorted(self.directory.glob("wal-*.jsonl")):
            stale.unlink(missing_ok=True)
        self.last_seq = int(payload.get("last_seq", 0))
        self._records_since_checkpoint = 0

    def recover(self, parallel: ParallelConfig | None = None) -> RecoveryOutcome:
        """Rebuild the engine: load the checkpoint, replay the WAL tail.

        Torn WAL tails are expected (that is what a crash mid-append
        leaves behind): replay stops at the last complete record and the
        dropped suffix is reported in the stats, never raised.  Ends by
        writing a fresh checkpoint so the next recovery starts from here.
        """
        payload = self._load_checkpoint()
        checkpoint_seq = int(payload.get("last_seq", 0))
        with TRACER.span(
            "durability.recover", tenant=self.tenant_id, checkpoint_seq=checkpoint_seq
        ) as span:
            self.close()
            if "store" in payload:
                # Store-backed tenant: the instance lives in the store file
                # (rolled back to its last sync = this checkpoint); replaying
                # the WAL tail re-applies the lost index deltas through the
                # engine's attached-store listener.
                from repro.store.sqlite import SqliteProblemStore

                section = payload["store"]
                store = SqliteProblemStore.open(section["path"])
                engine = AssignmentEngine.from_store(
                    store,
                    assignment=(
                        assignment_from_dict(section["assignment"])
                        if section.get("assignment") is not None
                        else None
                    ),
                    metadata=section.get("metadata") or {},
                    parallel=parallel,
                )
            else:
                engine = AssignmentEngine.from_snapshot(
                    engine_snapshot_from_dict(payload["snapshot"]), parallel=parallel
                )
            session = EngineSession(engine)
            stats = RecoveryStats(
                tenant=self.tenant_id,
                checkpoint_seq=checkpoint_seq,
                last_seq=checkpoint_seq,
            )
            self.applied = {}
            for key, body in payload.get("applied", []):
                self.applied[int(key)] = Response.from_dict(body)
            stats.restored_applied = len(self.applied)
            scan = read_wal(self.directory)
            stats.dropped_bytes = scan.dropped_bytes
            stats.segments = scan.segments
            replayed: dict[int, Response] = {}
            for record in scan.records:
                if record.seq <= checkpoint_seq:
                    stats.skipped_records += 1
                    continue
                response = session.dispatch(request_from_dict(record.request))
                replayed[record.seq] = response
                if record.client_seq is not None:
                    self.record_applied(record.client_seq, response)
                stats.replayed_records += 1
                stats.last_seq = record.seq
            self.last_seq = stats.last_seq
            # Collapse the replayed tail into a fresh checkpoint so the
            # next crash recovers from here, not from the old base.
            self.checkpoint(engine)
            span.set(
                replayed=stats.replayed_records, dropped=stats.dropped_bytes
            )
        registry = get_registry()
        registry.counter("durability.recoveries", "journal recoveries run").inc()
        registry.counter(
            "durability.replayed_records", "WAL records replayed during recovery"
        ).inc(stats.replayed_records)
        registry.counter(
            "durability.dropped_bytes", "torn WAL suffix bytes dropped at recovery"
        ).inc(stats.dropped_bytes)
        return RecoveryOutcome(
            engine=engine, session=session, replayed=replayed, stats=stats
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        return {
            "directory": str(self.directory),
            "fsync": self.config.fsync,
            "checkpoint_every": int(self.config.checkpoint_every),
            "last_seq": self.last_seq,
            "records_since_checkpoint": self._records_since_checkpoint,
            "applied": len(self.applied),
        }

    def _open_wal(self) -> None:
        self._wal = WriteAheadLog(self.directory, fsync=self.config.fsync)
        self._wal.open_segment(self.last_seq + 1)

    def _write_checkpoint(self, engine: AssignmentEngine) -> None:
        body: dict[str, Any] = {
            "format_version": CHECKPOINT_VERSION,
            "tenant": self.tenant_id,
            "last_seq": self.last_seq,
            "applied": [
                [key, response.to_dict()]
                for key, response in self.applied.items()
            ],
        }
        store = engine.store
        if store is not None and store.path is not None:
            # Store-backed tenant: checkpoint = store sync plus a slim
            # pointer.  Entities, conflicts and bids are committed inside
            # the store's transaction; only the assignment and metadata —
            # state the store does not own — ride in the checkpoint file,
            # so checkpoints stay O(assignment) instead of O(instance).
            engine.sync_store()
            body["store"] = {
                "path": str(store.path),
                "assignment": (
                    assignment_to_dict(engine.assignment)
                    if engine.assignment is not None
                    else None
                ),
                "metadata": {
                    "revision": engine.revision,
                    "last_solver": engine.last_solver,
                    "last_score": engine.last_score,
                },
            }
        else:
            body["snapshot"] = engine.to_snapshot()
        atomic_write_text(self.checkpoint_path, json.dumps(body))

    def _load_checkpoint(self) -> dict[str, Any]:
        if not self.has_checkpoint():
            raise ConfigurationError(
                f"no checkpoint for tenant {self.tenant_id!r} under "
                f"{self.directory}; nothing to recover"
            )
        payload = json.loads(self.checkpoint_path.read_text(encoding="utf-8"))
        version = payload.get("format_version")
        if version != CHECKPOINT_VERSION:
            raise UnsupportedFormatError("tenant checkpoint", version, CHECKPOINT_VERSION)
        return payload


def read_checkpoint(directory: Path) -> dict[str, Any] | None:
    """Read a tenant directory's checkpoint, or ``None`` if there is none.

    Read-only helper for the replication sender and ``wgrap wal``
    inspection; validates the format version but touches no state.
    """
    path = Path(directory) / CHECKPOINT_NAME
    if not path.exists():
        return None
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != CHECKPOINT_VERSION:
        raise UnsupportedFormatError("tenant checkpoint", version, CHECKPOINT_VERSION)
    return payload
