"""Request-serving front end over an :class:`AssignmentEngine`.

Two layers live here:

* :class:`EngineSession` — a request queue with typed dispatch.  Queued
  requests are drained in submission order, but runs of *compatible*
  journal queries (same group size, solver, top-k and pool settings) are
  batched: the score matrix is warmed once and the whole run is answered
  against the same cache generation, which is where a read-heavy journal
  workload spends its time.
* :func:`serve_stream` — the JSON-lines loop behind ``wgrap serve``: one
  request object per input line, one response object per output line.
  Malformed lines produce ``ok: false`` responses instead of killing the
  server; a ``{"kind": "shutdown"}`` request ends the loop.

Every dispatched request is timed into the engine's metrics registry
(``service.request.<kind>.seconds`` histograms, ``service.requests`` /
``service.failures`` / ``service.errors.<error_type>`` counters) and runs
under a ``request.<kind>`` span, so a ``metrics`` request reports p50/p99
latency per request kind and a ``trace`` request can replay any recent
request's span tree by the ``trace`` id echoed on its response.  A serving
loop given a slow-request threshold additionally emits one structured
JSON line per offending request on a diagnostics stream — never on the
wire-protocol output.
"""

from __future__ import annotations

import json
import time
from collections import deque
from collections.abc import Iterable
from typing import Any, TextIO

from repro.exceptions import (
    ConfigurationError,
    InfeasibleAssignmentError,
    InfeasibleProblemError,
    ReproError,
    RequestError,
    SolverError,
    UnknownScoringFunctionError,
    UnknownSolverError,
)
from repro.fault import get_failpoints
from repro.obs.trace import get_tracer
from repro.service.engine import AssignmentEngine
from repro.service.requests import (
    AddPaper,
    Evaluate,
    Fault,
    JournalQuery,
    Metrics,
    PortfolioSolve,
    Request,
    Response,
    Shutdown,
    Snapshot,
    SolveRequest,
    Stats,
    Trace,
    UpdateBids,
    WithdrawReviewer,
    request_from_dict,
)

TRACER = get_tracer()

__all__ = ["ERROR_TYPES", "EngineSession", "classify_error", "serve_stream"]

#: The closed vocabulary of structured ``error_type`` codes, with what each
#: means to a client.  :func:`classify_error` maps exceptions onto the first
#: seven; ``overloaded`` is produced by the network layer's admission
#: control (:mod:`repro.net.admission`) before a request reaches a session,
#: and ``standby`` by an unpromoted warm standby refusing engine traffic
#: (:mod:`repro.replication`).  ``docs/service.md`` renders this table and
#: ``tests/test_docs.py`` pins the two in sync.
ERROR_TYPES: dict[str, str] = {
    "request": "malformed input: bad JSON, unknown kind, missing or ill-typed fields",
    "unknown_solver": "a solver name not present in the registry",
    "unknown_id": "a paper, reviewer or tenant id the server does not know",
    "infeasible": "the instance (or requested mutation) admits no feasible assignment",
    "configuration": "inconsistent options (bad top_k, bad pool_size, duplicate tenant, ...)",
    "solver": "a solver failed to produce a result",
    "internal": "an unexpected failure; the exception class is named, no traceback leaks",
    "overloaded": "refused by admission control (backlog full or server draining); retry later",
    "standby": "this endpoint is an unpromoted warm standby; fail over to the primary (or retry after promotion)",
}


def classify_error(exc: BaseException) -> str:
    """Map an exception to the structured ``error_type`` of the wire protocol.

    Ordered most-specific first (``UnknownSolverError`` subclasses both
    :class:`~repro.exceptions.ConfigurationError` and :class:`KeyError`).
    The serving loop attaches the result to every failed response so
    clients can branch on a stable code instead of parsing messages.
    """
    if isinstance(exc, UnknownSolverError):
        return "unknown_solver"
    if isinstance(exc, UnknownScoringFunctionError):
        return "configuration"  # a scoring name, not a solver name
    if isinstance(exc, (InfeasibleProblemError, InfeasibleAssignmentError)):
        return "infeasible"
    if isinstance(exc, RequestError):
        return "request"
    if isinstance(exc, SolverError):
        return "solver"
    if isinstance(exc, ConfigurationError):
        return "configuration"
    if isinstance(exc, KeyError):
        return "unknown_id"
    if isinstance(exc, (ReproError, ValueError)):
        return "request"
    return "internal"


class EngineSession:
    """A queued, batching request front end for one engine.

    The session is the unit a future multi-tenant server would hold per
    client: it owns ordering, batching and error isolation, while the
    engine owns state and caches.
    """

    def __init__(self, engine: AssignmentEngine) -> None:
        self._engine = engine
        self._queue: deque[Request] = deque()
        self._counters: dict[str, int] = {
            "submitted": 0,
            "dispatched": 0,
            "failed": 0,
            "journal_batches": 0,
            "batched_queries": 0,
        }
        self._error_types: dict[str, int] = {}

    @property
    def engine(self) -> AssignmentEngine:
        """The engine this session serves."""
        return self._engine

    @property
    def pending(self) -> int:
        """Number of queued, not yet drained requests."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Enqueue a request for the next :meth:`drain`."""
        self._queue.append(request)
        self._counters["submitted"] += 1

    def drain(self) -> list[Response]:
        """Serve every queued request, in order, batching journal runs."""
        responses: list[Response] = []
        while self._queue:
            request = self._queue.popleft()
            if isinstance(request, JournalQuery):
                batch = [request]
                while self._queue and self._is_compatible_journal(
                    self._queue[0], request
                ):
                    batch.append(self._queue.popleft())
                responses.extend(self._dispatch_journal_batch(batch))
            else:
                responses.append(self.dispatch(request))
        return responses

    @staticmethod
    def _is_compatible_journal(candidate: Request, reference: JournalQuery) -> bool:
        return (
            isinstance(candidate, JournalQuery)
            and candidate.group_size == reference.group_size
            and candidate.solver == reference.solver
            and candidate.top_k == reference.top_k
            and candidate.pool_size == reference.pool_size
            and candidate.prune == reference.prune
        )

    def _dispatch_journal_batch(self, batch: list[JournalQuery]) -> list[Response]:
        if len(batch) > 1:
            self._counters["journal_batches"] += 1
            self._counters["batched_queries"] += len(batch)
            # One warm-up serves the whole run: every query then reads the
            # same cache generation without re-checking staleness.
            try:
                self._engine.warm()
            except ReproError:
                pass  # per-query dispatch will surface the error
        return [self.dispatch(query) for query in batch]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Serve one request immediately, converting failures to responses.

        *Every* exception becomes a structured ``ok: false`` response —
        domain errors with their specific ``error_type``, unexpected ones
        as ``"internal"`` with the exception class named in the message.
        The serving loop therefore never leaks a traceback to the client
        and never dies on a single bad request.

        Every dispatch is timed into ``service.request.<kind>.seconds``
        on the engine's metrics registry, and — when tracing is enabled —
        recorded as a ``request.<kind>`` span tree whose id the response
        carries as ``trace``.
        """
        self._counters["dispatched"] += 1
        registry = self._engine.metrics_registry
        registry.counter("service.requests", "requests dispatched").inc()
        trace_id = TRACER.new_trace_id() if TRACER.enabled else None
        started = time.perf_counter()
        error: str | None = None
        error_type: str | None = None
        payload: dict[str, Any] = {}
        try:
            with TRACER.span(f"request.{request.kind}", trace_id=trace_id):
                payload = self._handle(request)
        except (ReproError, KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            error, error_type = str(message), classify_error(exc)
        except Exception as exc:  # noqa: BLE001 — the loop must survive anything
            error, error_type = f"{type(exc).__name__}: {exc}", "internal"
        elapsed = time.perf_counter() - started
        registry.histogram(
            f"service.request.{request.kind}.seconds",
            "per-kind request latency",
        ).observe(elapsed)
        if error is not None:
            self._counters["failed"] += 1
            self._error_types[error_type or "internal"] = (
                self._error_types.get(error_type or "internal", 0) + 1
            )
            registry.counter("service.failures", "requests that failed").inc()
            registry.counter(
                f"service.errors.{error_type}", "failures by error type"
            ).inc()
            return Response.failure(
                kind=request.kind,
                error=error,
                request_id=request.request_id,
                error_type=error_type or "internal",
                trace_id=trace_id,
                elapsed_seconds=elapsed,
            )
        return Response(
            kind=request.kind,
            ok=True,
            payload=payload,
            request_id=request.request_id,
            trace_id=trace_id,
            elapsed_seconds=elapsed,
        )

    def _handle(self, request: Request) -> dict[str, Any]:
        engine = self._engine
        if isinstance(request, SolveRequest):
            result = engine.solve(solver=request.solver, **dict(request.options))
            return {
                "solver": result.solver_name,
                "score": result.score,
                "elapsed_seconds": result.elapsed_seconds,
                "assignment": result.assignment.to_dict(),
            }
        if isinstance(request, PortfolioSolve):
            outcome = engine.solve_portfolio(
                solvers=request.solvers or None,
                deadline=request.deadline,
                **dict(request.options),
            )
            payload = outcome.to_payload()
            payload["assignment"] = outcome.best.assignment.to_dict()
            return payload
        if isinstance(request, JournalQuery):
            answer = engine.journal_query(
                paper=request.paper if request.paper is not None else request.paper_id,
                group_size=request.group_size,
                top_k=request.top_k,
                solver=request.solver,
                pool_size=request.pool_size,
                prune=request.prune,
            )
            return answer.to_payload()
        if isinstance(request, AddPaper):
            delta = engine.add_paper(
                request.paper,
                reviewer_workload=request.reviewer_workload,
                pool_size=request.pool_size,
            )
            return delta.to_payload()
        if isinstance(request, WithdrawReviewer):
            delta = engine.withdraw_reviewer(request.reviewer_id)
            return delta.to_payload()
        if isinstance(request, UpdateBids):
            recorded = engine.update_bids(request.bids)
            return {"recorded": recorded, "total_bids": len(engine.bids)}
        if isinstance(request, Evaluate):
            return engine.evaluate(
                include_ratio=request.include_ratio,
                include_per_paper=request.include_per_paper,
            )
        if isinstance(request, Snapshot):
            path = engine.save_snapshot(request.path)
            return {"path": str(path)}
        if isinstance(request, Stats):
            return self.stats()
        if isinstance(request, Metrics):
            if request.format == "prometheus":
                return {"exposition": engine.metrics_prometheus()}
            return {"metrics": engine.metrics_snapshot()}
        if isinstance(request, Trace):
            return self._handle_trace(request)
        if isinstance(request, Fault):
            return self._handle_fault(request)
        if isinstance(request, Shutdown):
            return {"shutdown": True}
        raise RequestError(f"unhandled request kind {request.kind!r}")

    @staticmethod
    def _handle_fault(request: Fault) -> dict[str, Any]:
        registry = get_failpoints()
        if request.reset:
            registry.reset(request.site)
        elif request.site is not None:
            registry.configure(
                request.site,
                request.mode or "off",
                n=request.n,
                probability=request.probability,
                seed=request.seed,
            )
        return {"sites": registry.describe()}

    def _handle_trace(self, request: Trace) -> dict[str, Any]:
        if request.enable is not None:
            TRACER.enabled = bool(request.enable)
            return {"enabled": TRACER.enabled}
        if request.trace_id is not None:
            span = TRACER.get_trace(request.trace_id)
            if span is None:
                raise ConfigurationError(
                    f"trace {request.trace_id!r} not recorded "
                    "(tracing disabled, or the trace aged out of the buffer?)"
                )
            trace_id = request.trace_id
        else:
            last = TRACER.last_trace()
            if last is None:
                raise ConfigurationError(
                    "no trace recorded yet (enable tracing with "
                    '{"kind": "trace", "enable": true} first)'
                )
            trace_id, span = last
        return {
            "trace_id": trace_id,
            "root": span.to_dict(),
            "rendered": span.format_tree(),
        }

    def stats(self) -> dict[str, Any]:
        """Session counters merged with the engine's.

        The ``session`` block carries the dispatch counters plus the
        current queue depth (``pending``) and per-``error_type`` failure
        counts (``error_types``).
        """
        session: dict[str, Any] = dict(self._counters)
        session["pending"] = self.pending
        session["error_types"] = dict(self._error_types)
        return {"session": session, "engine": self._engine.stats()}


class _DrainRequested(Exception):
    """Raised out of a blocking read when SIGTERM/SIGINT asks for a drain."""


def serve_stream(
    engine: AssignmentEngine,
    lines: Iterable[str],
    output: TextIO,
    slow_threshold: float | None = None,
    diagnostics: TextIO | None = None,
    handle_signals: bool = False,
) -> int:
    """Run the JSON-lines request/response loop.

    Reads one JSON request per line from ``lines``, writes one JSON
    response per line to ``output``, and returns the number of requests
    served.  The loop survives malformed input and failed requests; it
    ends on a ``shutdown`` request or when the input is exhausted.

    With ``slow_threshold`` set (seconds), every request at or above the
    threshold emits one structured JSON line on ``diagnostics`` — a
    ``slow_request`` event carrying the request kind, id, wall time,
    trace id and (when tracing is enabled) the recorded span tree.  The
    diagnostics stream is separate from ``output`` so the wire protocol
    stays one-response-per-request; it defaults to ``sys.stderr``.

    With ``handle_signals`` set (the ``wgrap serve`` stdio path, main
    thread only), SIGTERM and SIGINT drain instead of kill: a signal
    arriving *while a request is being served* lets that request finish
    and its response reach the wire before the loop ends; a signal
    arriving while blocked on input interrupts the read directly.  Python
    retries the blocking ``readline`` after a handler returns (PEP 475),
    so the idle case must raise out of the handler — the ``busy`` flag
    decides which case we are in.  Handlers are restored on exit.
    """
    import sys

    session = EngineSession(engine)
    served = 0
    if diagnostics is None:
        diagnostics = sys.stderr

    busy = False
    drain_requested = False
    restore: list[tuple[int, Any]] = []
    if handle_signals:
        import signal

        def _on_signal(signum: int, frame: Any) -> None:
            nonlocal drain_requested
            drain_requested = True
            if not busy:
                raise _DrainRequested()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                restore.append((signum, signal.signal(signum, _on_signal)))
            except ValueError:
                # Not the main thread (tests drive this from workers):
                # serve without signal handling rather than refusing.
                break

    def emit(response: Response) -> None:
        output.write(json.dumps(response.to_dict()) + "\n")
        output.flush()

    def diagnose(request: Request, response: Response) -> None:
        if slow_threshold is None or response.elapsed_seconds is None:
            return
        if response.elapsed_seconds < slow_threshold:
            return
        span = (
            TRACER.get_trace(response.trace_id)
            if response.trace_id is not None
            else None
        )
        event = {
            "event": "slow_request",
            "kind": request.kind,
            "id": request.request_id,
            "seconds": response.elapsed_seconds,
            "trace": response.trace_id,
            "spans": span.to_dict() if span is not None else None,
        }
        try:
            diagnostics.write(json.dumps(event) + "\n")
            diagnostics.flush()
        except (OSError, ValueError):
            pass  # a broken diagnostics stream must not sink the serve loop

    try:
        iterator = iter(lines)
        while True:
            if drain_requested:
                break
            try:
                line = next(iterator)
            except StopIteration:
                break
            except _DrainRequested:
                break
            busy = True
            try:
                line = line.strip()
                if not line:
                    continue
                served += 1
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    emit(Response.failure(kind="parse", error=f"invalid JSON: {exc}"))
                    continue
                try:
                    request = request_from_dict(payload)
                except RequestError as exc:
                    request_id = payload.get("id") if isinstance(payload, dict) else None
                    emit(
                        Response.failure(
                            kind="parse", error=str(exc), request_id=request_id
                        )
                    )
                    continue
                response = session.dispatch(request)
                emit(response)
                diagnose(request, response)
                if isinstance(request, Shutdown):
                    break
            finally:
                busy = False
    except _DrainRequested:
        pass
    finally:
        if restore:
            import signal

            for signum, previous in restore:
                signal.signal(signum, previous)
    return served
