"""Request-serving front end over an :class:`AssignmentEngine`.

Two layers live here:

* :class:`EngineSession` — a request queue with typed dispatch.  Queued
  requests are drained in submission order, but runs of *compatible*
  journal queries (same group size, solver, top-k and pool settings) are
  batched: the score matrix is warmed once and the whole run is answered
  against the same cache generation, which is where a read-heavy journal
  workload spends its time.
* :func:`serve_stream` — the JSON-lines loop behind ``wgrap serve``: one
  request object per input line, one response object per output line.
  Malformed lines produce ``ok: false`` responses instead of killing the
  server; a ``{"kind": "shutdown"}`` request ends the loop.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Iterable
from typing import Any, TextIO

from repro.exceptions import (
    ConfigurationError,
    InfeasibleAssignmentError,
    InfeasibleProblemError,
    ReproError,
    RequestError,
    SolverError,
    UnknownScoringFunctionError,
    UnknownSolverError,
)
from repro.service.engine import AssignmentEngine
from repro.service.requests import (
    AddPaper,
    Evaluate,
    JournalQuery,
    PortfolioSolve,
    Request,
    Response,
    Shutdown,
    Snapshot,
    SolveRequest,
    Stats,
    UpdateBids,
    WithdrawReviewer,
    request_from_dict,
)

__all__ = ["EngineSession", "classify_error", "serve_stream"]


def classify_error(exc: BaseException) -> str:
    """Map an exception to the structured ``error_type`` of the wire protocol.

    Ordered most-specific first (``UnknownSolverError`` subclasses both
    :class:`~repro.exceptions.ConfigurationError` and :class:`KeyError`).
    The serving loop attaches the result to every failed response so
    clients can branch on a stable code instead of parsing messages.
    """
    if isinstance(exc, UnknownSolverError):
        return "unknown_solver"
    if isinstance(exc, UnknownScoringFunctionError):
        return "configuration"  # a scoring name, not a solver name
    if isinstance(exc, (InfeasibleProblemError, InfeasibleAssignmentError)):
        return "infeasible"
    if isinstance(exc, RequestError):
        return "request"
    if isinstance(exc, SolverError):
        return "solver"
    if isinstance(exc, ConfigurationError):
        return "configuration"
    if isinstance(exc, KeyError):
        return "unknown_id"
    if isinstance(exc, (ReproError, ValueError)):
        return "request"
    return "internal"


class EngineSession:
    """A queued, batching request front end for one engine.

    The session is the unit a future multi-tenant server would hold per
    client: it owns ordering, batching and error isolation, while the
    engine owns state and caches.
    """

    def __init__(self, engine: AssignmentEngine) -> None:
        self._engine = engine
        self._queue: deque[Request] = deque()
        self._counters: dict[str, int] = {
            "submitted": 0,
            "dispatched": 0,
            "failed": 0,
            "journal_batches": 0,
            "batched_queries": 0,
        }

    @property
    def engine(self) -> AssignmentEngine:
        """The engine this session serves."""
        return self._engine

    @property
    def pending(self) -> int:
        """Number of queued, not yet drained requests."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Enqueue a request for the next :meth:`drain`."""
        self._queue.append(request)
        self._counters["submitted"] += 1

    def drain(self) -> list[Response]:
        """Serve every queued request, in order, batching journal runs."""
        responses: list[Response] = []
        while self._queue:
            request = self._queue.popleft()
            if isinstance(request, JournalQuery):
                batch = [request]
                while self._queue and self._is_compatible_journal(
                    self._queue[0], request
                ):
                    batch.append(self._queue.popleft())
                responses.extend(self._dispatch_journal_batch(batch))
            else:
                responses.append(self.dispatch(request))
        return responses

    @staticmethod
    def _is_compatible_journal(candidate: Request, reference: JournalQuery) -> bool:
        return (
            isinstance(candidate, JournalQuery)
            and candidate.group_size == reference.group_size
            and candidate.solver == reference.solver
            and candidate.top_k == reference.top_k
            and candidate.pool_size == reference.pool_size
            and candidate.prune == reference.prune
        )

    def _dispatch_journal_batch(self, batch: list[JournalQuery]) -> list[Response]:
        if len(batch) > 1:
            self._counters["journal_batches"] += 1
            self._counters["batched_queries"] += len(batch)
            # One warm-up serves the whole run: every query then reads the
            # same cache generation without re-checking staleness.
            try:
                self._engine.warm()
            except ReproError:
                pass  # per-query dispatch will surface the error
        return [self.dispatch(query) for query in batch]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Serve one request immediately, converting failures to responses.

        *Every* exception becomes a structured ``ok: false`` response —
        domain errors with their specific ``error_type``, unexpected ones
        as ``"internal"`` with the exception class named in the message.
        The serving loop therefore never leaks a traceback to the client
        and never dies on a single bad request.
        """
        self._counters["dispatched"] += 1
        try:
            payload = self._handle(request)
        except (ReproError, KeyError, ValueError) as exc:
            self._counters["failed"] += 1
            message = exc.args[0] if exc.args else str(exc)
            return Response.failure(
                kind=request.kind,
                error=str(message),
                request_id=request.request_id,
                error_type=classify_error(exc),
            )
        except Exception as exc:  # noqa: BLE001 — the loop must survive anything
            self._counters["failed"] += 1
            return Response.failure(
                kind=request.kind,
                error=f"{type(exc).__name__}: {exc}",
                request_id=request.request_id,
                error_type="internal",
            )
        return Response(
            kind=request.kind, ok=True, payload=payload, request_id=request.request_id
        )

    def _handle(self, request: Request) -> dict[str, Any]:
        engine = self._engine
        if isinstance(request, SolveRequest):
            result = engine.solve(solver=request.solver, **dict(request.options))
            return {
                "solver": result.solver_name,
                "score": result.score,
                "elapsed_seconds": result.elapsed_seconds,
                "assignment": result.assignment.to_dict(),
            }
        if isinstance(request, PortfolioSolve):
            outcome = engine.solve_portfolio(
                solvers=request.solvers or None,
                deadline=request.deadline,
                **dict(request.options),
            )
            payload = outcome.to_payload()
            payload["assignment"] = outcome.best.assignment.to_dict()
            return payload
        if isinstance(request, JournalQuery):
            answer = engine.journal_query(
                paper=request.paper if request.paper is not None else request.paper_id,
                group_size=request.group_size,
                top_k=request.top_k,
                solver=request.solver,
                pool_size=request.pool_size,
                prune=request.prune,
            )
            return answer.to_payload()
        if isinstance(request, AddPaper):
            delta = engine.add_paper(
                request.paper,
                reviewer_workload=request.reviewer_workload,
                pool_size=request.pool_size,
            )
            return delta.to_payload()
        if isinstance(request, WithdrawReviewer):
            delta = engine.withdraw_reviewer(request.reviewer_id)
            return delta.to_payload()
        if isinstance(request, UpdateBids):
            recorded = engine.update_bids(request.bids)
            return {"recorded": recorded, "total_bids": len(engine.bids)}
        if isinstance(request, Evaluate):
            return engine.evaluate(
                include_ratio=request.include_ratio,
                include_per_paper=request.include_per_paper,
            )
        if isinstance(request, Snapshot):
            path = engine.save_snapshot(request.path)
            return {"path": str(path)}
        if isinstance(request, Stats):
            return self.stats()
        if isinstance(request, Shutdown):
            return {"shutdown": True}
        raise RequestError(f"unhandled request kind {request.kind!r}")

    def stats(self) -> dict[str, Any]:
        """Session counters merged with the engine's."""
        return {"session": dict(self._counters), "engine": self._engine.stats()}


def serve_stream(
    engine: AssignmentEngine, lines: Iterable[str], output: TextIO
) -> int:
    """Run the JSON-lines request/response loop.

    Reads one JSON request per line from ``lines``, writes one JSON
    response per line to ``output``, and returns the number of requests
    served.  The loop survives malformed input and failed requests; it
    ends on a ``shutdown`` request or when the input is exhausted.
    """
    session = EngineSession(engine)
    served = 0

    def emit(response: Response) -> None:
        output.write(json.dumps(response.to_dict()) + "\n")
        output.flush()

    for line in lines:
        line = line.strip()
        if not line:
            continue
        served += 1
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            emit(Response.failure(kind="parse", error=f"invalid JSON: {exc}"))
            continue
        try:
            request = request_from_dict(payload)
        except RequestError as exc:
            request_id = payload.get("id") if isinstance(payload, dict) else None
            emit(Response.failure(kind="parse", error=str(exc), request_id=request_id))
            continue
        response = session.dispatch(request)
        emit(response)
        if isinstance(request, Shutdown):
            break
    return served
