"""Long-lived assignment-engine subsystem.

Everything else in the library is batch: load a problem, solve, exit.
This package is the resident counterpart, built for serving a stream of
requests against one problem instance:

* :mod:`repro.service.cache` — the lazily built, incrementally repaired
  score matrix plus per-paper top-k reviewer indexes.
* :mod:`repro.service.registry` — string-keyed CRA/JRA solver registry
  (mirroring the scoring-function registry of :mod:`repro.core.scoring`).
* :mod:`repro.service.requests` — the typed request/response API with
  JSON codecs.
* :mod:`repro.service.engine` — :class:`AssignmentEngine`: the resident
  problem, cache maintenance driven by core mutation events, journal
  queries, incremental mutations, evaluation and snapshots.
* :mod:`repro.service.session` — the queued, batching front end and the
  JSON-lines ``serve`` loop used by the CLI.

The engine composes with the worker-pool execution layer of
:mod:`repro.parallel`: construct it with a
:class:`~repro.parallel.ParallelConfig` to build score matrices through
the sharded kernel and to race solver portfolios
(:meth:`AssignmentEngine.solve_portfolio
<repro.service.engine.AssignmentEngine.solve_portfolio>`) across worker
processes.  See ``docs/service.md`` for the engine lifecycle and the
wire protocol, ``docs/architecture.md`` for where the subsystem sits.
"""

from repro.service.cache import CacheStats, ScoreMatrixCache
from repro.service.engine import AssignmentEngine, EngineDelta, JournalAnswer
from repro.service.registry import (
    SolverSpec,
    available_solver_specs,
    available_solvers,
    create_solver,
    register_solver,
    solver_spec,
)
from repro.service.requests import (
    AddPaper,
    Evaluate,
    JournalQuery,
    PortfolioSolve,
    Request,
    Response,
    Shutdown,
    Snapshot,
    SolveRequest,
    Stats,
    UpdateBids,
    WithdrawReviewer,
    request_from_dict,
    request_to_dict,
)
from repro.service.session import EngineSession, serve_stream

__all__ = [
    "AssignmentEngine",
    "EngineDelta",
    "JournalAnswer",
    "CacheStats",
    "ScoreMatrixCache",
    "SolverSpec",
    "available_solver_specs",
    "available_solvers",
    "create_solver",
    "register_solver",
    "solver_spec",
    "Request",
    "SolveRequest",
    "PortfolioSolve",
    "JournalQuery",
    "AddPaper",
    "WithdrawReviewer",
    "UpdateBids",
    "Evaluate",
    "Snapshot",
    "Stats",
    "Shutdown",
    "Response",
    "request_from_dict",
    "request_to_dict",
    "EngineSession",
    "serve_stream",
]
