"""Incrementally maintained pairwise-score cache for the assignment engine.

The most expensive shared input of every request the engine serves is the
dense ``(R, P)`` matrix of single-reviewer scores ``c(r, p)``: the solvers,
the per-paper reviewer shortlists and the candidate-pool pruning of journal
queries all read it.  Rebuilding it from scratch after every mutation — the
behaviour of the one-shot batch entry points — costs ``R * P`` scoring
evaluations even when a single paper arrived.

:class:`ScoreMatrixCache` keeps the matrix resident and repairs it
incrementally instead:

* a **late paper** appends one column, marked dirty and scored lazily on
  the next read (``R`` evaluations instead of ``R * P``);
* a **withdrawn reviewer** deletes one row without any re-scoring at all,
  because pair scores are independent across reviewers;
* per-paper **top-k reviewer indexes** (descending score order) are built
  on demand from the cached columns and invalidated only when the column
  or the reviewer pool changes.

All scoring work funnels through one helper that counts evaluated cells,
so tests and benchmarks can assert exactly how much scoring a request
triggered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.problem import ProblemMutation, WGRAPProblem
from repro.exceptions import ConfigurationError
from repro.obs.trace import get_tracer
from repro.parallel.config import ParallelConfig
from repro.store.blocks import MemmapScoreStore

TRACER = get_tracer()

__all__ = ["CacheStats", "ScoreMatrixCache"]


@dataclass
class CacheStats:
    """Counters describing how much work the score cache has done.

    Attributes
    ----------
    full_builds:
        Times the whole ``(R, P)`` matrix was materialised (computed from
        scratch or adopted).
    adopted_builds:
        Full builds that reused a matrix the problem had already warmed
        (no scoring work at all).
    partial_updates:
        Times only the dirty columns were repaired (by re-scoring or by
        adopting delta-maintained columns from the problem).
    score_calls:
        Calls into the scoring function's vectorised matrix kernel.
    scored_cells:
        Total reviewer/paper cells evaluated (the real unit of work).
    columns_added:
        Paper columns appended by ``add_paper`` mutations.
    columns_adopted:
        Dirty columns repaired by adopting the problem's delta-maintained
        matrix instead of re-scoring (no scoring work at all).
    rows_removed:
        Reviewer rows dropped by ``remove_reviewer`` mutations.
    topk_builds:
        Per-paper reviewer rankings computed.
    topk_hits:
        Per-paper reviewer rankings served from cache.
    """

    full_builds: int = 0
    adopted_builds: int = 0
    partial_updates: int = 0
    score_calls: int = 0
    scored_cells: int = 0
    columns_added: int = 0
    columns_adopted: int = 0
    rows_removed: int = 0
    topk_builds: int = 0
    topk_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for reports and the ``stats`` request)."""
        return {
            "full_builds": self.full_builds,
            "adopted_builds": self.adopted_builds,
            "partial_updates": self.partial_updates,
            "score_calls": self.score_calls,
            "scored_cells": self.scored_cells,
            "columns_added": self.columns_added,
            "columns_adopted": self.columns_adopted,
            "rows_removed": self.rows_removed,
            "topk_builds": self.topk_builds,
            "topk_hits": self.topk_hits,
        }


class ScoreMatrixCache:
    """A lazily built, incrementally repaired ``(R, P)`` score matrix.

    The cache mirrors the entity order of its problem: row ``i`` is
    ``problem.reviewers[i]`` and column ``j`` is ``problem.papers[j]``.
    Mutations keep that alignment — appended papers go last, withdrawn
    reviewers keep the relative order of the survivors — which is exactly
    what :meth:`WGRAPProblem.with_additional_paper` and
    :meth:`WGRAPProblem.without_reviewer` guarantee.

    When a :class:`~repro.parallel.ParallelConfig` is given, full builds
    large enough to clear its serial threshold go through the sharded
    worker-pool kernel of :mod:`repro.parallel.sharding` (bitwise-identical
    results); single-column repairs stay on the serial path automatically
    because one column is always below the threshold.
    """

    def __init__(
        self,
        problem: WGRAPProblem,
        stats: CacheStats | None = None,
        parallel: ParallelConfig | None = None,
        storage: "MemmapScoreStore | None" = None,
    ) -> None:
        self._problem = problem
        self._parallel = parallel
        #: optional memmap block backend: the matrix lives on disk, full
        #: builds go block-by-block (bounded RAM), and row drops rewrite
        #: into a fresh generation file instead of np.delete in RAM.
        self._storage = storage
        self._paper_ids: list[str] = list(problem.paper_ids)
        self._column_of: dict[str, int] = {
            paper_id: column for column, paper_id in enumerate(self._paper_ids)
        }
        self._matrix: np.ndarray | None = None
        self._dirty_papers: set[str] = set()
        #: per-paper descending ranking of reviewer rows (row indices)
        self._rankings: dict[str, np.ndarray] = {}
        self.stats = stats if stats is not None else CacheStats()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def problem(self) -> WGRAPProblem:
        """The problem instance the cache currently mirrors."""
        return self._problem

    @property
    def is_built(self) -> bool:
        """Whether the dense matrix has been materialised at least once."""
        return self._matrix is not None

    @property
    def storage(self) -> "MemmapScoreStore | None":
        """The block backend the matrix lives in (``None`` when in RAM)."""
        return self._storage

    @property
    def dirty_papers(self) -> frozenset[str]:
        """Papers whose column is stale and will be re-scored on next read."""
        return frozenset(self._dirty_papers)

    def matrix(self) -> np.ndarray:
        """The up-to-date ``(R, P)`` score matrix (read-only view).

        Builds the whole matrix on first use; afterwards only dirty columns
        are recomputed.  The matrix is shared both ways with the problem's
        own cache: a matrix some solver already warmed through
        :meth:`WGRAPProblem.warm_pair_scores` is reused instead of
        re-scored (``stats.adopted_builds``), and every read seeds the
        currently bound problem via
        :meth:`WGRAPProblem.adopt_pair_scores` (a no-op once it holds one,
        skipped while dirty columns make the shapes disagree), so engine
        requests that run solvers on the same problem stop
        re-materialising it.
        """
        problem = self._problem
        if self._matrix is None:
            with TRACER.span(
                "cache.full_build",
                reviewers=problem.num_reviewers,
                papers=len(self._paper_ids),
            ) as build_span:
                warmed = problem.cached_pair_scores
                if warmed is not None and warmed.shape == (
                    problem.num_reviewers,
                    len(self._paper_ids),
                ):
                    if self._storage is not None:
                        # Adoption across mediums is a block copy into the
                        # mapped file (the zero-copy share only exists in
                        # RAM), but still no scoring work.
                        self._matrix = self._storage.write_all(np.asarray(warmed))
                    else:
                        # Zero-copy adoption; every later write reallocates
                        # first (np.delete / placeholder concat), so the
                        # problem's read-only matrix is never touched.
                        self._matrix = np.asarray(warmed)
                    self.stats.adopted_builds += 1
                    build_span.set(adopted=True)
                elif self._storage is not None:
                    # Out-of-core full build: score block-by-block straight
                    # into the mapped file, so peak RAM is one column block
                    # and the complete matrix only ever exists on disk.
                    reviewer_matrix = problem.reviewer_matrix
                    paper_matrix = problem.paper_matrix
                    self._matrix = self._storage.build(
                        problem.num_reviewers,
                        len(self._paper_ids),
                        lambda start, stop: self._score_block(
                            reviewer_matrix, paper_matrix[start:stop]
                        ),
                    )
                else:
                    self._matrix = self._score_block(
                        problem.reviewer_matrix, problem.paper_matrix
                    )
                self._dirty_papers.clear()
                self.stats.full_builds += 1
        elif self._dirty_papers:
            with TRACER.span(
                "cache.partial_update", dirty=len(self._dirty_papers)
            ) as patch_span:
                columns = sorted(
                    self._column_of[paper_id] for paper_id in self._dirty_papers
                )
                warmed = problem.cached_pair_scores
                if warmed is not None and warmed.shape == (
                    problem.num_reviewers,
                    len(self._paper_ids),
                ):
                    # The problem already carries a delta-maintained matrix in
                    # which these columns are scored (same kernel, bitwise-equal
                    # — see repro.core.delta.appended_score_column): adopt the
                    # columns instead of scoring them a second time.
                    self._matrix[:, columns] = warmed[:, columns]
                    self.stats.columns_adopted += len(columns)
                    patch_span.set(adopted=True)
                else:
                    block = self._score_block(
                        problem.reviewer_matrix, problem.paper_matrix[columns]
                    )
                    self._matrix[:, columns] = block
                self._dirty_papers.clear()
                self.stats.partial_updates += 1
        if self._matrix.shape == (problem.num_reviewers, problem.num_papers):
            # Seed the (possibly rebound, post-mutation) problem so solvers
            # reading pair_score_matrix() afterwards reuse this matrix; a
            # no-op once the problem holds one.  With a block backend the
            # problem adopts a read-only *view* of the mapped file instead
            # of a copy — dense compilation then reads blocks, and the
            # matrix never has to fit in RAM.
            problem.adopt_pair_scores(self._matrix, copy=self._storage is None)
        view = self._matrix.view()
        view.setflags(write=False)
        return view

    def scores_for_paper(self, paper_id: str) -> np.ndarray:
        """One column of the matrix: every reviewer's score on ``paper_id``."""
        try:
            column = self._column_of[paper_id]
        except KeyError:
            raise KeyError(f"unknown paper id: {paper_id!r}") from None
        return self.matrix()[:, column]

    def top_reviewers(
        self, paper_id: str, k: int, exclude_conflicts: bool = True
    ) -> list[tuple[str, float]]:
        """The ``k`` highest-scoring reviewers for one paper, best first.

        Ties are broken by problem order so the ranking is deterministic.
        Conflicted reviewers are filtered out by default, which makes the
        result directly usable as a journal-query candidate shortlist.
        """
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        scores = self.scores_for_paper(paper_id)
        ranking = self._rankings.get(paper_id)
        if ranking is None:
            ranking = np.argsort(-scores, kind="stable")
            self._rankings[paper_id] = ranking
            self.stats.topk_builds += 1
        else:
            self.stats.topk_hits += 1
        reviewer_ids = self._problem.reviewer_ids
        forbidden = (
            self._problem.conflicts.reviewers_conflicting_with(paper_id)
            if exclude_conflicts
            else frozenset()
        )
        shortlist: list[tuple[str, float]] = []
        for row in ranking:
            reviewer_id = reviewer_ids[int(row)]
            if reviewer_id in forbidden:
                continue
            shortlist.append((reviewer_id, float(scores[int(row)])))
            if len(shortlist) == k:
                break
        return shortlist

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_mutation(self, mutation: ProblemMutation) -> None:
        """Repair the cache after a problem mutation event."""
        if mutation.kind == "add_paper":
            for paper_id in mutation.papers:
                self._add_paper_column(mutation.result, paper_id)
        elif mutation.kind == "remove_reviewer":
            for reviewer_id in mutation.reviewers:
                self._remove_reviewer_row(mutation.source, reviewer_id)
            self._problem = mutation.result
        else:  # unknown mutation kinds invalidate everything, conservatively
            self.invalidate(mutation.result)

    def invalidate(self, problem: WGRAPProblem | None = None) -> None:
        """Drop every cached value (optionally rebinding to a new problem)."""
        if problem is not None:
            self._problem = problem
        self._paper_ids = list(self._problem.paper_ids)
        self._column_of = {
            paper_id: column for column, paper_id in enumerate(self._paper_ids)
        }
        self._matrix = None
        self._dirty_papers.clear()
        self._rankings.clear()

    def _add_paper_column(self, problem: WGRAPProblem, paper_id: str) -> None:
        if paper_id in self._column_of:
            return
        self._column_of[paper_id] = len(self._paper_ids)
        self._paper_ids.append(paper_id)
        self._problem = problem
        if self._matrix is not None:
            warmed = problem.cached_pair_scores
            if warmed is not None and warmed.shape == (
                problem.num_reviewers,
                len(self._paper_ids),
            ):
                if self._storage is not None:
                    # The delta layer scored the new column in RAM; write it
                    # (plus any still-dirty columns the exact warmed matrix
                    # covers) back into the mapped blocks.  Appends land in
                    # reserved capacity beyond every older adopted view.
                    self._matrix = self._storage.append_column(
                        np.asarray(warmed[:, -1])
                    )
                    if self._dirty_papers:
                        columns = sorted(
                            self._column_of[dirty] for dirty in self._dirty_papers
                        )
                        self._matrix[:, columns] = np.asarray(warmed)[:, columns]
                else:
                    # The delta layer already carried the matrix over to the
                    # derived problem with the new column scored (bitwise-equal
                    # kernel): share it by reference instead of copying the
                    # whole matrix for a placeholder.  Later writes (dirty
                    # repairs, row drops) always allocate a fresh array first,
                    # so the shared read-only matrix is never mutated.  Any
                    # leftover dirty columns are covered by the adopted matrix
                    # (it is exact for *every* column), so they are clean now —
                    # and must be cleared, or the next read would try to repair
                    # them in place on the read-only array.
                    self._matrix = np.asarray(warmed)
                self.stats.columns_adopted += 1 + len(self._dirty_papers)
                self._dirty_papers.clear()
            else:
                if self._storage is not None:
                    # Reserve a zeroed on-disk column; scored lazily on read.
                    self._matrix = self._storage.append_column(None)
                else:
                    # Append a placeholder column; scored lazily on next read.
                    placeholder = np.zeros(
                        (self._matrix.shape[0], 1), dtype=np.float64
                    )
                    self._matrix = np.concatenate([self._matrix, placeholder], axis=1)
                self._dirty_papers.add(paper_id)
        self.stats.columns_added += 1

    def _remove_reviewer_row(self, problem: WGRAPProblem, reviewer_id: str) -> None:
        row = problem.reviewer_index(reviewer_id)
        if self._matrix is not None:
            # Pair scores are independent across reviewers, so dropping the
            # row needs no re-scoring at all.
            if self._storage is not None:
                # Blockwise rewrite into a fresh generation file; adopted
                # views of the old generation stay intact.
                self._matrix = self._storage.drop_row(row)
            else:
                self._matrix = np.delete(self._matrix, row, axis=0)
        # Every ranking indexes rows, so all of them are stale now.
        self._rankings.clear()
        self.stats.rows_removed += 1

    # ------------------------------------------------------------------
    # Instrumented scoring
    # ------------------------------------------------------------------
    def _score_block(
        self, reviewer_matrix: np.ndarray, paper_matrix: np.ndarray
    ) -> np.ndarray:
        """Every scoring evaluation goes through here, so it can be counted."""
        self.stats.score_calls += 1
        self.stats.scored_cells += int(reviewer_matrix.shape[0]) * int(
            paper_matrix.shape[0]
        )
        # Pass ``parallel`` only when configured, so serial caches keep the
        # exact historical call shape (tests and callers wrap score_matrix).
        if self._parallel is not None:
            scores = self._problem.scoring.score_matrix(
                reviewer_matrix, paper_matrix, parallel=self._parallel
            )
        else:
            scores = self._problem.scoring.score_matrix(reviewer_matrix, paper_matrix)
        return np.array(scores, dtype=np.float64)

    def describe(self) -> dict[str, Any]:
        """Summary used by the ``stats`` request of the serving front end."""
        summary = {
            "built": self.is_built,
            "shape": [self._problem.num_reviewers, len(self._paper_ids)],
            "dirty_papers": sorted(self._dirty_papers),
            "rankings_cached": len(self._rankings),
            "parallel_workers": (
                self._parallel.resolved_workers() if self._parallel is not None else 1
            ),
            **self.stats.as_dict(),
        }
        if self._storage is not None:
            summary["storage"] = self._storage.describe()
        return summary
