"""The long-lived assignment engine.

The batch entry points of the library rebuild the whole problem — and with
it the full ``(R, P)`` score matrix — on every call.  That is fine for a
one-shot experiment and wasteful for a service: the paper itself frames
Journal Reviewer Assignment as an *online* query ("a paper arrives, find
its best group now"), and a production review system fields a stream of
such queries interleaved with mutations (late submissions, reviewer
drop-outs, bid updates).

:class:`AssignmentEngine` is the resident core that amortises the shared
work across requests:

* it owns one :class:`~repro.core.problem.WGRAPProblem` and subscribes to
  its mutation events, so the score cache
  (:class:`~repro.service.cache.ScoreMatrixCache`) is repaired
  incrementally — one column per late paper, zero re-scoring per
  withdrawal — instead of rebuilt;
* journal queries reuse cached per-paper JRA sub-problems and can prune
  their candidate pool with the cache's top-k reviewer index;
* conference solves, incremental mutations and evaluation all go through
  the string-keyed solver registry, so requests can name solvers.

The request-queue front end lives in :mod:`repro.service.session`; this
module is the synchronous engine underneath it.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.assignment import Assignment
from repro.core.entities import Paper
from repro.core.problem import JRAProblem, ProblemMutation, WGRAPProblem
from repro.cra.base import CRAResult
from repro.cra.repair import complete_assignment
from repro.data.io import (
    EngineSnapshot,
    engine_snapshot_to_dict,
    load_engine_snapshot,
    save_engine_snapshot,
)
from repro.exceptions import (
    ConfigurationError,
    InfeasibleAssignmentError,
    InfeasibleProblemError,
)
from repro.extensions.bidding import BidAwareObjective, BidAwareSDGASolver, BidMatrix, bid_satisfaction
from repro.fault import get_failpoints
from repro.jra.topk import RankedGroup, find_top_k_groups
from repro.metrics.quality import lowest_coverage_score, optimality_ratio
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import get_tracer
from repro.parallel.config import ParallelConfig
from repro.parallel.portfolio import DEFAULT_PORTFOLIO, PortfolioOutcome, run_portfolio
from repro.service.cache import ScoreMatrixCache
from repro.service.registry import create_solver, solver_spec
from repro.store.base import ProblemStore

TRACER = get_tracer()

__all__ = ["AssignmentEngine", "EngineDelta", "JournalAnswer"]


@dataclass(frozen=True)
class EngineDelta:
    """What changed when the engine applied one mutation.

    Returning the delta (instead of a rebuilt problem/assignment pair)
    lets callers — the incremental-maintenance API, the serving front end,
    downstream notification fan-out — propagate exactly the affected
    state.
    """

    kind: str
    affected_papers: tuple[str, ...]
    added_pairs: tuple[tuple[str, str], ...]
    removed_pairs: tuple[tuple[str, str], ...]
    problem: WGRAPProblem
    assignment: Assignment | None

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable summary for the serving front end."""
        return {
            "kind": self.kind,
            "affected_papers": list(self.affected_papers),
            "added_pairs": [list(pair) for pair in self.added_pairs],
            "removed_pairs": [list(pair) for pair in self.removed_pairs],
            "num_papers": self.problem.num_papers,
            "num_reviewers": self.problem.num_reviewers,
        }


@dataclass(frozen=True)
class JournalAnswer:
    """Outcome of one journal (single-paper) query.

    Attributes
    ----------
    paper_id:
        The queried paper.
    groups:
        The best group(s), ranked from 1; length 1 unless ``top_k > 1``.
    shortlist:
        Highest-scoring individual reviewers from the cached score matrix
        (empty for inline papers that are not part of the problem).
    cache_hit:
        Whether the JRA sub-problem came from the engine's cache.
    solver:
        Canonical name of the solver that answered the query.
    elapsed_seconds:
        Wall-clock time spent answering.
    """

    paper_id: str
    groups: tuple[RankedGroup, ...]
    shortlist: tuple[tuple[str, float], ...]
    cache_hit: bool
    solver: str
    elapsed_seconds: float

    @property
    def best(self) -> RankedGroup:
        """The rank-1 group."""
        return self.groups[0]

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable summary for the serving front end."""
        return {
            "paper_id": self.paper_id,
            "groups": [
                {
                    "rank": group.rank,
                    "reviewer_ids": list(group.reviewer_ids),
                    "score": group.score,
                }
                for group in self.groups
            ],
            "shortlist": [[reviewer_id, score] for reviewer_id, score in self.shortlist],
            "cache_hit": self.cache_hit,
            "solver": self.solver,
            "elapsed_seconds": self.elapsed_seconds,
        }


class AssignmentEngine:
    """A resident WGRAP problem with cached scoring and incremental updates.

    Parameters
    ----------
    problem:
        The loaded problem instance.  The engine subscribes to its mutation
        events; mutations made through the engine *or* directly through
        :meth:`WGRAPProblem.with_additional_paper` /
        :meth:`WGRAPProblem.without_reviewer` keep the caches consistent.
    assignment:
        Optional current assignment (copied, never mutated in place).
    bids:
        Optional reviewer bids carried into bid-aware solves.
    parallel:
        Optional :class:`~repro.parallel.ParallelConfig`.  Score-matrix
        builds big enough to clear its serial threshold go through the
        sharded worker-pool kernel (results stay bitwise-identical), and
        :meth:`solve_portfolio` races its solvers across that many worker
        processes.

    Notes
    -----
    Mutating methods are not transactional against arbitrary failures, but
    the two built-in mutations either pre-validate everything before
    touching state (:meth:`add_paper`) or roll the engine back on an
    infeasible repair (:meth:`withdraw_reviewer`).

    Assignments the engine produced itself (solves, staffed additions,
    validated repairs) are trusted across subsequent mutations instead of
    being re-validated on every request — an ``O(P * delta_p)`` saving per
    mutation on the serving hot path.  An externally supplied assignment
    (constructor, snapshot) is validated once, the first time a mutation
    needs the guarantee.  Mutating :attr:`assignment` in place from the
    outside voids that warranty.
    """

    #: default solver names (overridable per request)
    DEFAULT_CRA_SOLVER = "SDGA-SRA"
    DEFAULT_JRA_SOLVER = "BBA"

    #: counter keys pre-registered under ``engine.*`` so ``stats()`` keeps
    #: a stable shape even before the first request of each kind
    _COUNTER_KEYS = (
        "solves",
        "portfolio_solves",
        "journal_queries",
        "journal_cache_hits",
        "add_paper",
        "remove_reviewer",
        "bid_updates",
        "evaluations",
    )

    def __init__(
        self,
        problem: WGRAPProblem,
        assignment: Assignment | None = None,
        bids: BidMatrix | None = None,
        parallel: ParallelConfig | None = None,
        registry: MetricsRegistry | None = None,
        store: "ProblemStore | None" = None,
    ) -> None:
        self._problem = problem
        self._root_problem = problem
        self._assignment = assignment.copy() if assignment is not None else None
        #: conflict-set version at which the installed assignment was last
        #: known-feasible, or ``None`` — engine-produced assignments
        #: (solves, staffed mutations, validated repairs) are marked valid;
        #: externally supplied ones are validated once, on the first
        #: mutation that needs the guarantee.  Keying on the conflict
        #: version means live conflict edits automatically force a
        #: re-validation (a newly added conflict can invalidate any
        #: assigned pair).
        self._assignment_valid_at: int | None = None
        self._bids = bids if bids is not None else BidMatrix()
        self._parallel = parallel
        #: optional durable problem store; attached first so its index
        #: deltas follow the same mutation chain the cache repairs, and
        #: so entity queries route through the indexed backend.
        self._store = store
        if store is not None:
            store.attach(problem)
        self._cache = ScoreMatrixCache(
            problem,
            parallel=parallel,
            storage=store.matrix_backend() if store is not None else None,
        )
        self._jra_cache: dict[tuple[str, int, int | None], JRAProblem] = {}
        #: conflict version the JRA sub-problem cache is valid for
        self._jra_cache_version = problem.conflicts.version
        self._revision = 0
        # All counters live in the metrics registry under ``engine.*``;
        # ``stats()`` derives the historical flat keys from them.
        self._registry = registry if registry is not None else MetricsRegistry()
        for key in self._COUNTER_KEYS:
            self._registry.counter(f"engine.{key}")
        self._last_solver: str | None = None
        self._last_score: float | None = None
        # The problem must not keep the engine (and its dense score matrix)
        # alive: subscribe through a weak reference, and let the wrapper
        # unsubscribe itself once the engine has been collected.
        engine_ref = weakref.ref(self)

        def listener(mutation: ProblemMutation) -> None:
            engine = engine_ref()
            if engine is None:
                mutation.source.remove_mutation_listener(listener)
                mutation.result.remove_mutation_listener(listener)
                return
            engine._on_mutation(mutation)

        self._listener = listener
        problem.add_mutation_listener(listener)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def problem(self) -> WGRAPProblem:
        """The current problem instance (replaced on every mutation)."""
        return self._problem

    @property
    def assignment(self) -> Assignment | None:
        """The current assignment, or ``None`` before the first solve."""
        return self._assignment

    @property
    def bids(self) -> BidMatrix:
        """Accumulated reviewer bids."""
        return self._bids

    @property
    def cache(self) -> ScoreMatrixCache:
        """The score-matrix cache (exposed for instrumentation)."""
        return self._cache

    @property
    def parallel(self) -> ParallelConfig | None:
        """The worker-pool config, or ``None`` for fully serial operation."""
        return self._parallel

    @property
    def store(self) -> "ProblemStore | None":
        """The durable problem store, or ``None`` for in-RAM engines."""
        return self._store

    @property
    def store_path(self) -> Any:
        """Where the attached store persists (``None`` without one)."""
        return self._store.path if self._store is not None else None

    def sync_store(self) -> None:
        """Commit pending store deltas (checkpoint = store sync)."""
        if self._store is not None:
            self._store.sync()

    @property
    def revision(self) -> int:
        """Monotonic counter, bumped once per applied mutation."""
        return self._revision

    @property
    def last_solver(self) -> str | None:
        """Name of the solver behind the current assignment, if any."""
        return self._last_solver

    @property
    def last_score(self) -> float | None:
        """Objective value of the last completed solve, if any."""
        return self._last_score

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The engine's metrics namespace (``engine.*`` plus absorbed stats)."""
        return self._registry

    def _count(self, key: str, amount: int = 1) -> None:
        self._registry.counter(f"engine.{key}").inc(amount)

    def _observe(self, name: str, seconds: float) -> None:
        self._registry.histogram(name).observe(seconds)

    def warm(self) -> "AssignmentEngine":
        """Materialise the score matrix now instead of on the first query."""
        self._cache.matrix()
        return self

    def _mark_assignment_valid(self) -> None:
        """Record that the installed assignment is feasible *now*."""
        self._assignment_valid_at = self._problem.conflicts.version

    def _assignment_known_valid(self) -> bool:
        """Whether the feasibility guarantee still stands.

        A moved conflict version voids it: a newly added conflict can
        invalidate any assigned pair, so the next mutation re-validates in
        full (and raises, exactly like the historical unconditional
        validation did).
        """
        return self._assignment_valid_at == self._problem.conflicts.version

    def detach(self) -> None:
        """Unsubscribe from the problem's mutation events.

        Call this when discarding a short-lived engine wrapped around a
        caller-owned problem, so the problem does not keep notifying (and
        referencing) a dead engine.  Both the problem the engine was
        constructed around and the current (possibly derived) instance are
        unsubscribed.
        """
        self._root_problem.remove_mutation_listener(self._listener)
        self._problem.remove_mutation_listener(self._listener)

    def _on_mutation(self, mutation: ProblemMutation) -> None:
        self._cache.apply_mutation(mutation)
        self._problem = mutation.result
        self._revision += 1
        self._count(mutation.kind)
        # The feasibility guarantee does not survive a problem swap; the
        # engine's own mutation paths re-establish it after their targeted
        # validation, while mutations made directly through the problem API
        # leave it void until the next full validation.
        self._assignment_valid_at = None
        if mutation.kind == "remove_reviewer":
            # Candidate pools changed for every paper.
            self._jra_cache.clear()
            self._jra_cache_version = self._problem.conflicts.version

    # ------------------------------------------------------------------
    # Conference solve
    # ------------------------------------------------------------------
    def solve(
        self,
        solver: str | None = None,
        bid_tradeoff: float | None = None,
        **options: Any,
    ) -> CRAResult:
        """Run a conference-assignment solver and install its assignment.

        Parameters
        ----------
        solver:
            Registry name (``"SDGA"``, ``"SDGA-SRA"``, ``"Greedy"``, ...).
        bid_tradeoff:
            When set (and bids have been recorded), the solve maximises the
            combined coverage+bid objective with this trade-off ``lambda``
            using the bid-aware SDGA of :mod:`repro.extensions.bidding`.
        options:
            Forwarded to the solver factory (e.g. ``seed``,
            ``convergence_window`` for SDGA-SRA).
        """
        get_failpoints().hit("solver_call")
        started = time.perf_counter()
        name = solver or self.DEFAULT_CRA_SOLVER
        if bid_tradeoff is not None:
            instance = BidAwareSDGASolver(
                BidAwareObjective(bids=self._bids, tradeoff=bid_tradeoff)
            )
            canonical = instance.name
        else:
            spec = solver_spec("cra", name)
            instance = spec.factory(**options)
            canonical = spec.name
        if self._cache.storage is not None:
            # Out-of-core engines must solve from the mapped blocks: the
            # cache build seeds the problem with a read-only view of the
            # block file, so the solver never materialises the full
            # matrix in RAM (and repairs land in the blocks, not a copy).
            self._cache.matrix()
        with TRACER.span("engine.solve", solver=canonical) as span:
            result = instance.solve(self._problem)
            span.set(score=round(result.score, 6))
        self._assignment = result.assignment
        self._mark_assignment_valid()
        self._last_solver = canonical
        self._last_score = result.score
        self._count("solves")
        self._observe("engine.solve.seconds", time.perf_counter() - started)
        return result

    def solve_portfolio(
        self,
        solvers: tuple[str, ...] | list[str] | None = None,
        deadline: float | None = None,
        **options: Any,
    ) -> PortfolioOutcome:
        """Race several CRA solvers and install the best assignment.

        The race runs through :func:`repro.parallel.run_portfolio` with the
        engine's parallel config: with multiple workers the solvers run in
        separate processes (the resident problem is shipped in its JSON
        dict form, so the engine's mutation listeners never cross the
        process boundary); with one worker the line-up runs in order,
        respecting the deadline between members.

        Parameters
        ----------
        solvers:
            Registry names; defaults to
            :data:`repro.parallel.DEFAULT_PORTFOLIO`.
        deadline:
            Optional wall-clock budget in seconds.
        options:
            Forwarded to every solver factory.
        """
        started = time.perf_counter()
        with TRACER.span("engine.portfolio") as span:
            outcome = run_portfolio(
                self._problem,
                solvers=tuple(solvers) if solvers is not None else DEFAULT_PORTFOLIO,
                deadline=deadline,
                config=self._parallel,
                **options,
            )
            span.set(best=outcome.best_solver)
        self._assignment = outcome.best.assignment
        self._mark_assignment_valid()
        self._last_solver = outcome.best_solver
        self._last_score = outcome.best.score
        self._count("portfolio_solves")
        self._observe("engine.portfolio.seconds", time.perf_counter() - started)
        return outcome

    # ------------------------------------------------------------------
    # Journal queries
    # ------------------------------------------------------------------
    def journal_query(
        self,
        paper: str | Paper,
        group_size: int | None = None,
        top_k: int = 1,
        solver: str | None = None,
        pool_size: int | None = None,
        shortlist_size: int = 5,
        prune: int | None = None,
    ) -> JournalAnswer:
        """Answer one online JRA query against the resident pool.

        Parameters
        ----------
        paper:
            A paper id of the loaded problem, or an inline :class:`Paper`
            that is scored against the pool without joining the problem.
        group_size:
            Override of the problem's ``delta_p``.
        top_k:
            Return the ``k`` best groups instead of only the optimum
            (supported by the BBA and BFS solvers).
        solver:
            Registry name of the JRA solver (default BBA).
        pool_size:
            When set, restrict the candidate pool to the top ``pool_size``
            reviewers of the cached score index — a large speed-up for big
            pools at a usually negligible quality cost.  Only available for
            papers of the problem (the cache has no column for inline
            papers).
        prune:
            When set, answer through the *exact* pruned candidate pool of
            :func:`repro.jra.topk.find_top_k_groups`: solve on the top
            ``prune`` candidates (ranked by the cached score column) and
            certify the answer with the admissible bound, falling back to
            the full pool when the bound cannot certify it.  Unlike
            ``pool_size`` this never changes the answer; certification
            outcomes are counted in the engine's delta stats
            (``prune_certified`` / ``prune_fallbacks``).  Supported for
            the BBA and BFS solvers.
        shortlist_size:
            How many individually top-scoring reviewers to report alongside
            the optimal group (0 disables the shortlist).
        """
        with TRACER.span("engine.journal_query") as span:
            answer = self._journal_query(
                paper,
                group_size=group_size,
                top_k=top_k,
                solver=solver,
                pool_size=pool_size,
                shortlist_size=shortlist_size,
                prune=prune,
            )
            span.set(paper=answer.paper_id, cache_hit=answer.cache_hit)
        self._observe("engine.journal.seconds", answer.elapsed_seconds)
        return answer

    def _journal_query(
        self,
        paper: str | Paper,
        group_size: int | None = None,
        top_k: int = 1,
        solver: str | None = None,
        pool_size: int | None = None,
        shortlist_size: int = 5,
        prune: int | None = None,
    ) -> JournalAnswer:
        started = time.perf_counter()
        spec = solver_spec("jra", solver or self.DEFAULT_JRA_SOLVER)
        if top_k < 1:
            raise ConfigurationError("top_k must be at least 1")
        if prune is not None and spec.name.lower() not in {"bba", "bfs"}:
            raise ConfigurationError(
                f"exact pruning is supported for the BBA and BFS solvers, "
                f"not {spec.name!r}"
            )

        inline = isinstance(paper, Paper)
        if inline and paper.id in self._problem.paper_ids:
            # The caller inlined a known paper; serve the problem's copy
            # from the cache instead.
            inline = False
            paper = paper.id
        if inline:
            paper_obj = paper
            paper_id = paper_obj.id
        else:
            paper_id = str(paper)
            paper_obj = self._problem.paper_by_id(paper_id)  # raises KeyError

        size = group_size if group_size is not None else self._problem.group_size
        if inline and pool_size is not None:
            raise ConfigurationError(
                "pool_size pruning needs a cached score column; "
                "add the paper to the problem first"
            )

        cache_hit = False
        if inline:
            jra = JRAProblem(
                paper=paper_obj,
                reviewers=self._problem.reviewers,
                group_size=size,
                scoring=self._problem.scoring,
            )
        else:
            # Conflict edits on the live container change candidate pools,
            # and a stale sub-problem would silently keep serving the old
            # exclusions — drop the whole cache when the version moved
            # (bounded memory: entries for dead versions never linger).
            if self._jra_cache_version != self._problem.conflicts.version:
                self._jra_cache.clear()
                self._jra_cache_version = self._problem.conflicts.version
            key = (paper_id, size, pool_size)
            cached = self._jra_cache.get(key)
            if cached is not None:
                jra = cached
                cache_hit = True
            else:
                jra = self._build_jra(paper_obj, size, pool_size)
                self._jra_cache[key] = jra

        if prune is not None:
            groups = tuple(
                find_top_k_groups(
                    jra,
                    top_k,
                    method=spec.name.lower(),
                    prune=prune,
                    candidate_scores=(
                        None if inline else self._candidate_scores_for(jra, paper_id)
                    ),
                    stats=self._problem.view_stats,
                )
            )
        else:
            solver_instance = spec.factory(top_k=top_k)
            result = solver_instance.solve(jra)
            ranked_raw = result.stats.get("top_k") if top_k > 1 else None
            if ranked_raw:
                groups = tuple(
                    RankedGroup(rank=rank, reviewer_ids=tuple(ids), score=float(score))
                    for rank, (ids, score) in enumerate(ranked_raw[:top_k], start=1)
                )
            else:
                groups = (
                    RankedGroup(
                        rank=1, reviewer_ids=result.reviewer_ids, score=result.score
                    ),
                )

        shortlist: tuple[tuple[str, float], ...] = ()
        if shortlist_size > 0 and not inline:
            shortlist = tuple(self._cache.top_reviewers(paper_id, shortlist_size))

        self._count("journal_queries")
        if cache_hit:
            self._count("journal_cache_hits")
        return JournalAnswer(
            paper_id=paper_id,
            groups=groups,
            shortlist=shortlist,
            cache_hit=cache_hit,
            solver=spec.name,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _candidate_scores_for(self, jra: JRAProblem, paper_id: str) -> Any:
        """The cached score-column entries aligned with a JRA candidate pool.

        Feeds the exact pruned top-k path without any re-scoring: the
        cache column holds the same pair scores the pruned solver would
        compute (same kernel, bitwise-equal).
        """
        column = self._cache.scores_for_paper(paper_id)
        problem = self._problem
        rows = [problem.reviewer_index(rid) for rid in jra.reviewer_ids]
        return column[rows]

    def _build_jra(
        self, paper: Paper, group_size: int, pool_size: int | None
    ) -> JRAProblem:
        excluded: set[str] = set(
            self._problem.conflicts.reviewers_conflicting_with(paper.id)
        )
        if pool_size is not None:
            if pool_size < group_size:
                raise ConfigurationError(
                    f"pool_size ({pool_size}) must be at least the group size "
                    f"({group_size})"
                )
            keep = {
                reviewer_id
                for reviewer_id, _ in self._cache.top_reviewers(paper.id, pool_size)
            }
            excluded |= {
                reviewer_id
                for reviewer_id in self._problem.reviewer_ids
                if reviewer_id not in keep
            }
        return JRAProblem(
            paper=paper,
            reviewers=self._problem.reviewers,
            group_size=group_size,
            excluded_reviewers=excluded,
            scoring=self._problem.scoring,
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_paper(
        self,
        paper: Paper,
        reviewer_workload: int | None = None,
        solver: str | None = None,
        pool_size: int | None = None,
    ) -> EngineDelta:
        """Append a late submission; staff it when an assignment exists.

        Staffing never touches existing groups: the new paper gets an exact
        JRA group drawn from the reviewers with spare capacity (this is the
        paper's journal sub-problem applied inside a conference).  The
        engine's score cache gains one dirty column — the full matrix is
        *not* recomputed.

        ``pool_size`` restricts the staffing candidates to the top
        ``pool_size`` reviewers by score on the new paper (one ``R x T``
        scoring pass — the matrix column does not exist yet), mirroring
        the journal-query knob of the same name: at service scale an exact
        search over a 50-reviewer shortlist is orders of magnitude faster
        than over the whole pool, at a usually negligible quality cost.

        Raises
        ------
        ConfigurationError
            If the paper id already exists in the problem.
        InfeasibleProblemError
            If fewer than ``delta_p`` reviewers have spare capacity.
        """
        started = time.perf_counter()
        with TRACER.span("engine.add_paper", paper=paper.id):
            delta = self._add_paper(
                paper,
                reviewer_workload=reviewer_workload,
                solver=solver,
                pool_size=pool_size,
            )
        self._observe("engine.add_paper.seconds", time.perf_counter() - started)
        return delta

    def _add_paper(
        self,
        paper: Paper,
        reviewer_workload: int | None = None,
        solver: str | None = None,
        pool_size: int | None = None,
    ) -> EngineDelta:
        problem = self._problem
        if paper.id in problem.paper_ids:
            raise ConfigurationError(f"paper {paper.id!r} is already part of the problem")
        workload = (
            reviewer_workload if reviewer_workload is not None else problem.reviewer_workload
        )

        group_ids: tuple[str, ...] = ()
        pair_score_column: Any = None
        if self._assignment is not None:
            if not self._assignment_known_valid():
                problem.validate_assignment(self._assignment, require_complete=True)
                self._mark_assignment_valid()
            if workload < problem.reviewer_workload:
                # A tightened workload can invalidate *existing* loads; catch
                # that here, before anything is committed (the historical
                # full post-validation raised only after the mutation).
                overloaded = [
                    reviewer_id
                    for reviewer_id in problem.reviewer_ids
                    if self._assignment.load(reviewer_id) > workload
                ]
                if overloaded:
                    raise InfeasibleAssignmentError(
                        "lowering reviewer_workload to "
                        f"{workload} would overload reviewers "
                        f"{overloaded[:5]!r}"
                    )
            exhausted = {
                reviewer_id
                for reviewer_id in problem.reviewer_ids
                if self._assignment.load(reviewer_id) >= workload
            }
            # Conflicts can be declared for a paper id before the paper
            # arrives; keep only entries naming reviewers still in the pool
            # so the availability count below stays exact.
            known = set(problem.reviewer_ids)
            excluded = exhausted | (
                set(problem.conflicts.reviewers_conflicting_with(paper.id)) & known
            )
            available = problem.num_reviewers - len(excluded)
            if available < problem.group_size:
                raise InfeasibleProblemError(
                    f"only {available} reviewers have spare capacity for the new "
                    "paper; increase reviewer_workload to absorb it"
                )
            if pool_size is not None and available > pool_size:
                if pool_size < problem.group_size:
                    raise ConfigurationError(
                        f"pool_size ({pool_size}) must be at least the group "
                        f"size ({problem.group_size})"
                    )
                # One scoring pass serves both the shortlist and, through
                # with_additional_paper below, the delta column append.
                pair_score_column = problem.scoring.score_matrix(
                    problem.reviewer_matrix,
                    np.asarray(paper.vector.values, dtype=np.float64)[None, :],
                )[:, 0]
                ranking = np.argsort(-pair_score_column, kind="stable")
                keep: set[str] = set()
                for row in ranking:
                    reviewer_id = problem.reviewer_ids[int(row)]
                    if reviewer_id in excluded:
                        continue
                    keep.add(reviewer_id)
                    if len(keep) == pool_size:
                        break
                excluded = {
                    reviewer_id
                    for reviewer_id in problem.reviewer_ids
                    if reviewer_id not in keep
                }
            jra = JRAProblem(
                paper=paper,
                reviewers=problem.reviewers,
                group_size=problem.group_size,
                excluded_reviewers=excluded,
                scoring=problem.scoring,
            )
            staffing = create_solver("jra", solver or self.DEFAULT_JRA_SOLVER)
            group_ids = staffing.solve(jra).reviewer_ids

        # All checks passed; commit the mutation (the listener repairs the
        # cache by appending one lazy column) and staff the paper.
        mutated = problem.with_additional_paper(
            paper, workload, pair_score_column=pair_score_column
        )
        if self._assignment is not None:
            for reviewer_id in group_ids:
                self._assignment.add(reviewer_id, paper.id)
            # Targeted validation: the pre-state was engine-validated and
            # staffing only added the new paper's group, so checking those
            # delta_p pairs (instead of re-walking all P * delta_p) keeps
            # the guarantee at delta cost.
            self._validate_staffed_group(mutated, paper.id, group_ids, workload)
            self._mark_assignment_valid()
        return EngineDelta(
            kind="add_paper",
            affected_papers=(paper.id,),
            added_pairs=tuple((reviewer_id, paper.id) for reviewer_id in sorted(group_ids)),
            removed_pairs=(),
            problem=mutated,
            assignment=self._assignment,
        )

    def _validate_staffed_group(
        self,
        problem: WGRAPProblem,
        paper_id: str,
        group_ids: tuple[str, ...],
        workload: int,
    ) -> None:
        """Check the freshly staffed group against the derived problem.

        Raises :class:`~repro.exceptions.InfeasibleAssignmentError` exactly
        like the full :meth:`WGRAPProblem.validate_assignment` would for a
        defect in these pairs.
        """
        violations: list[str] = []
        if self._assignment.group_size(paper_id) != problem.group_size:
            violations.append(
                f"paper {paper_id!r} has {self._assignment.group_size(paper_id)} "
                f"reviewers, expected delta_p={problem.group_size}"
            )
        for reviewer_id in group_ids:
            if problem.conflicts.is_conflict(reviewer_id, paper_id):
                violations.append(
                    f"conflict of interest: reviewer {reviewer_id!r} on paper "
                    f"{paper_id!r}"
                )
            if self._assignment.load(reviewer_id) > workload:
                violations.append(
                    f"reviewer {reviewer_id!r} has {self._assignment.load(reviewer_id)} "
                    f"papers, more than delta_r={workload}"
                )
        if violations:
            raise InfeasibleAssignmentError("; ".join(violations))

    def withdraw_reviewer(self, reviewer_id: str) -> EngineDelta:
        """Remove a reviewer; re-staff their papers when an assignment exists.

        The vacated slots are refilled by the repair pass (a capacitated
        assignment maximising marginal coverage, with augmenting swaps when
        capacity is tight).  The engine's score cache drops one row — no
        re-scoring happens at all.  If the remaining pool cannot cover the
        vacated slots the engine state is rolled back before the error
        propagates.

        Raises
        ------
        KeyError
            If the reviewer is not part of the problem.
        InfeasibleProblemError
            If the remaining pool cannot cover the vacated slots.
        """
        started = time.perf_counter()
        with TRACER.span("engine.withdraw_reviewer", reviewer=reviewer_id):
            delta = self._withdraw_reviewer(reviewer_id)
        self._observe("engine.withdraw_reviewer.seconds", time.perf_counter() - started)
        return delta

    def _withdraw_reviewer(self, reviewer_id: str) -> EngineDelta:
        problem = self._problem
        problem.reviewer_index(reviewer_id)  # raises KeyError for unknown reviewers
        if self._assignment is not None and not self._assignment_known_valid():
            problem.validate_assignment(self._assignment, require_complete=True)
            self._mark_assignment_valid()

        affected = (
            tuple(sorted(self._assignment.papers_of(reviewer_id)))
            if self._assignment is not None
            else ()
        )
        before_pairs = (
            set(self._assignment.pairs()) if self._assignment is not None else set()
        )

        mutated = problem.without_reviewer(reviewer_id)
        if self._assignment is None:
            return EngineDelta(
                kind="remove_reviewer",
                affected_papers=affected,
                added_pairs=(),
                removed_pairs=(),
                problem=mutated,
                assignment=None,
            )

        stripped = Assignment(
            pair for pair in self._assignment.pairs() if pair[0] != reviewer_id
        )
        try:
            repaired = complete_assignment(mutated, stripped)
            mutated.validate_assignment(repaired, require_complete=True)
        except Exception:
            # Roll the engine back to the pre-mutation problem — including
            # the revision, counters and row-removal stat the listener
            # already bumped; the cheap price is a full cache invalidation.
            mutated.remove_mutation_listener(self._listener)
            self._problem = problem
            stats = self._cache.stats
            stats.rows_removed -= 1
            self._cache = ScoreMatrixCache(
                problem,
                stats=stats,
                parallel=self._parallel,
                storage=self._cache.storage,
            )
            if self._store is not None:
                # The store's listener already applied the withdrawal;
                # re-attaching to the pre-mutation problem rebases it.
                self._store.attach(problem)
            self._jra_cache.clear()
            self._revision -= 1
            self._count("remove_reviewer", -1)
            raise

        after_pairs = set(repaired.pairs())
        self._assignment = repaired
        self._mark_assignment_valid()
        return EngineDelta(
            kind="remove_reviewer",
            affected_papers=affected,
            added_pairs=tuple(sorted(after_pairs - before_pairs)),
            removed_pairs=tuple(sorted(before_pairs - after_pairs)),
            problem=mutated,
            assignment=repaired,
        )

    def update_bids(self, bids: Any) -> int:
        """Merge ``(reviewer_id, paper_id, value)`` bid triples.

        Unknown reviewer or paper ids are rejected (with :class:`KeyError`)
        before anything is applied, so a bad batch never half-commits.
        Returns the number of bids recorded.
        """
        triples = [(str(r), str(p), float(v)) for r, p, v in bids]
        for reviewer_id, paper_id, _ in triples:
            self._problem.reviewer_index(reviewer_id)
            self._problem.paper_index(paper_id)
        for reviewer_id, paper_id, value in triples:
            self._bids.set(reviewer_id, paper_id, value)
        if self._store is not None:
            # Mirror into durable storage so from_store() restores them.
            self._store.record_bids(triples)
        self._count("bid_updates", len(triples))
        return len(triples)

    # ------------------------------------------------------------------
    # Evaluation, stats, snapshots
    # ------------------------------------------------------------------
    def evaluate(
        self, include_ratio: bool = True, include_per_paper: bool = False
    ) -> dict[str, Any]:
        """Score the current assignment under the problem's scoring function.

        Raises
        ------
        ConfigurationError
            When no assignment has been produced or loaded yet.
        """
        if self._assignment is None:
            raise ConfigurationError(
                "the engine has no assignment yet; run a solve first"
            )
        problem = self._problem
        score = problem.assignment_score(self._assignment)
        payload: dict[str, Any] = {
            "score": score,
            "mean_coverage": score / problem.num_papers,
            "lowest_coverage": lowest_coverage_score(problem, self._assignment),
            "num_papers": problem.num_papers,
            "num_reviewers": problem.num_reviewers,
            "num_pairs": len(self._assignment),
            "solver": self._last_solver,
        }
        if include_ratio:
            payload["optimality_ratio"] = optimality_ratio(problem, self._assignment)
        if include_per_paper:
            payload["per_paper"] = problem.paper_scores(self._assignment)
        if len(self._bids):
            payload["bid_satisfaction"] = bid_satisfaction(self._assignment, self._bids)
        self._count("evaluations")
        return payload

    def _flat_counters(self) -> dict[str, int]:
        """The historical flat counter keys, derived from the registry."""
        from repro.obs.metrics import Counter

        return {
            name[len("engine."):]: metric.value
            for name, metric in self._registry.items()
            if isinstance(metric, Counter) and name.startswith("engine.")
        }

    def _refresh_absorbed_gauges(self) -> None:
        """Mirror the cache and view-maintenance counters into the registry.

        ``CacheStats`` and ``ViewStats`` stay the single source of truth
        (solvers and the delta layer keep bumping them directly); at
        export time their values land in the registry as ``cache.*`` /
        ``delta.*`` gauges so one namespace carries everything.
        """
        for key, value in self._cache.stats.as_dict().items():
            self._registry.gauge(f"cache.{key}").set(value)
        for key, value in self._problem.view_stats.as_dict().items():
            self._registry.gauge(f"delta.{key}").set(value)
        store = self._store if self._store is not None else self._problem.entity_store
        for key, value in store.describe().items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue  # skip kind/path/meta/indexes — gauges are scalars
            self._registry.gauge(f"store.{key}").set(value)
        backend = store.matrix_backend()
        if backend is not None:
            for key, value in backend.describe().items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                self._registry.gauge(f"store.blocks_{key}").set(value)

    def metrics_snapshot(self) -> dict[str, Any]:
        """One JSON-serialisable metrics namespace for this engine.

        Counters and histogram summaries (p50/p95/p99) from the engine's
        registry, the absorbed ``cache.*``/``delta.*`` gauges, plus the
        process-global ``solver.*`` timings.
        """
        self._refresh_absorbed_gauges()
        merged = get_registry().snapshot()
        merged.update(self._registry.snapshot())
        return merged

    def metrics_prometheus(self) -> str:
        """The same namespace in Prometheus text exposition format."""
        self._refresh_absorbed_gauges()
        return get_registry().to_prometheus() + self._registry.to_prometheus()

    def stats(self) -> dict[str, Any]:
        """Engine counters plus the cache's and the view layer's summaries.

        The ``delta`` block carries the compiled-view maintenance counters
        (``delta_applies``, ``recompiles``, ``conflict_patches``) and the
        exact-pruning outcomes (``prune_certified``, ``prune_fallbacks``)
        accumulated across the whole mutation chain the engine has served.
        The historical flat keys are kept; the ``metrics`` block is the
        full registry snapshot (latency histograms included).
        """
        return {
            "revision": self._revision,
            "has_assignment": self._assignment is not None,
            "last_solver": self._last_solver,
            "last_score": self._last_score,
            "num_bids": len(self._bids),
            "jra_problems_cached": len(self._jra_cache),
            "parallel_workers": (
                self._parallel.resolved_workers() if self._parallel is not None else 1
            ),
            **self._flat_counters(),
            "cache": self._cache.describe(),
            "delta": self._problem.view_stats.as_dict(),
            "store": (
                self._store if self._store is not None else self._problem.entity_store
            ).describe(),
            "metrics": self.metrics_snapshot(),
        }

    def to_snapshot(self) -> dict[str, Any]:
        """JSON-serialisable snapshot of the resumable engine state."""
        return engine_snapshot_to_dict(
            problem=self._problem,
            assignment=self._assignment,
            bids=tuple(self._bids.pairs()),
            metadata={
                "revision": self._revision,
                "last_solver": self._last_solver,
                "last_score": self._last_score,
            },
        )

    def save_snapshot(self, path: Any) -> Any:
        """Write the snapshot to ``path``; returns the path written."""
        return save_engine_snapshot(self.to_snapshot(), path)

    @classmethod
    def from_snapshot(
        cls, snapshot: EngineSnapshot, parallel: ParallelConfig | None = None
    ) -> "AssignmentEngine":
        """Rebuild an engine from a deserialised snapshot."""
        bids = BidMatrix(
            {
                (reviewer_id, paper_id): value
                for reviewer_id, paper_id, value in snapshot.bids
            }
        )
        engine = cls(
            snapshot.problem,
            assignment=snapshot.assignment,
            bids=bids,
            parallel=parallel,
        )
        engine._last_solver = snapshot.metadata.get("last_solver")
        engine._last_score = snapshot.metadata.get("last_score")
        # The revision counter is part of the resumable state: a recovered
        # engine must report the same revision as one that never crashed.
        engine._revision = int(snapshot.metadata.get("revision", 0))
        return engine

    @classmethod
    def load(cls, path: Any, parallel: ParallelConfig | None = None) -> "AssignmentEngine":
        """Rebuild an engine from a snapshot file."""
        return cls.from_snapshot(load_engine_snapshot(path), parallel=parallel)

    @classmethod
    def from_store(
        cls,
        store: "ProblemStore",
        *,
        assignment: Assignment | None = None,
        bids: Any = None,
        metadata: dict[str, Any] | None = None,
        parallel: ParallelConfig | None = None,
    ) -> "AssignmentEngine":
        """Build an engine over a durable problem store.

        The problem is materialised from the store, bids default to the
        store's persisted ones, and the engine keeps the store attached:
        mutations become transactional index deltas, committed at
        :meth:`sync_store` (which is what checkpoints call).
        """
        problem = store.load_problem()
        if bids is None:
            bids = store.load_bids()
        bid_matrix = BidMatrix(
            {
                (reviewer_id, paper_id): value
                for reviewer_id, paper_id, value in bids
            }
        )
        engine = cls(
            problem,
            assignment=assignment,
            bids=bid_matrix,
            parallel=parallel,
            store=store,
        )
        metadata = metadata or {}
        engine._last_solver = metadata.get("last_solver")
        engine._last_score = metadata.get("last_score")
        engine._revision = int(metadata.get("revision", 0))
        return engine

    def __repr__(self) -> str:
        return (
            f"AssignmentEngine(P={self._problem.num_papers}, "
            f"R={self._problem.num_reviewers}, revision={self._revision}, "
            f"assignment={'yes' if self._assignment is not None else 'no'})"
        )
