"""Typed requests and responses for the assignment-engine front end.

Every operation the engine serves has a small frozen dataclass here, plus
dict codecs so the same request can arrive as a Python object (library
users, :class:`~repro.service.session.EngineSession`) or as one JSON line
(the ``wgrap serve`` loop).  Parsing is strict: an unknown kind, a missing
field or a malformed paper payload raises :class:`RequestError`, which the
serving loop turns into an ``ok: false`` response instead of dying.

The codecs round-trip, and defaults are made explicit on the way in:

>>> from repro.service.requests import request_from_dict, request_to_dict
>>> request = request_from_dict({"kind": "journal", "paper_id": "p7", "top_k": 2, "id": 1})
>>> (request.solver, request.top_k)         # BBA is the journal default
('BBA', 2)
>>> request_to_dict(request) == {"kind": "journal", "id": 1,
...                              "paper_id": "p7", "top_k": 2, "solver": "BBA"}
True
>>> request_from_dict({"kind": "nope"})
Traceback (most recent call last):
    ...
repro.exceptions.RequestError: unknown request kind 'nope'; known kinds: \
['add_paper', 'evaluate', 'fault', 'journal', 'metrics', 'portfolio', \
'shutdown', 'snapshot', 'solve', 'stats', 'trace', 'update_bids', \
'withdraw_reviewer']

Mutation requests (:data:`MUTATION_KINDS`) may carry a client-chosen
``seq`` envelope field — the idempotency key durable tenants use to
apply retried mutations exactly once:

>>> request = request_from_dict({"kind": "withdraw_reviewer", "reviewer_id": "r1", "seq": 9})
>>> request.client_seq
9
>>> request_to_dict(request)["seq"]
9
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.core.entities import Paper
from repro.core.vectors import TopicVector
from repro.exceptions import RequestError

__all__ = [
    "Request",
    "SolveRequest",
    "PortfolioSolve",
    "JournalQuery",
    "AddPaper",
    "WithdrawReviewer",
    "UpdateBids",
    "Evaluate",
    "Snapshot",
    "Stats",
    "Metrics",
    "Trace",
    "Shutdown",
    "Fault",
    "Response",
    "MUTATION_KINDS",
    "request_from_dict",
    "request_to_dict",
    "paper_from_payload",
    "paper_to_payload",
]


@dataclass(frozen=True)
class Request:
    """Base class of every front-end request.

    The optional ``request_id`` is echoed back on the response so clients
    pipelining several JSON lines can correlate answers with questions.

    The optional ``client_seq`` (wire field ``seq``) is a client-chosen
    idempotency key: a durable tenant remembers the response per key, so
    a mutation retried after a lost connection is answered from the
    stored response instead of executing twice.  Keys should be unique
    per tenant per client stream; queries may omit it.
    """

    kind: ClassVar[str] = "abstract"

    request_id: str | int | None = None
    client_seq: int | None = None


@dataclass(frozen=True)
class SolveRequest(Request):
    """Run a conference-assignment solver and install its assignment."""

    kind: ClassVar[str] = "solve"

    solver: str = "SDGA-SRA"
    options: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class PortfolioSolve(Request):
    """Race several CRA solvers; install the best-scoring assignment.

    ``solvers`` is the line-up (registry names; empty means the default
    portfolio) and ``deadline`` an optional wall-clock budget in seconds.
    """

    kind: ClassVar[str] = "portfolio"

    solvers: tuple[str, ...] = ()
    deadline: float | None = None
    options: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class JournalQuery(Request):
    """Find the best reviewer group for one paper (the online JRA query).

    Either ``paper_id`` names a paper of the loaded problem, or ``paper``
    carries an inline submission that is scored against the pool without
    being added to the problem ("a paper arrives, find its group now").
    """

    kind: ClassVar[str] = "journal"

    paper_id: str | None = None
    paper: Paper | None = None
    group_size: int | None = None
    top_k: int = 1
    solver: str = "BBA"
    pool_size: int | None = None
    #: exact pruned-pool width (certified, result-preserving) — distinct
    #: from the heuristic ``pool_size`` restriction
    prune: int | None = None

    def __post_init__(self) -> None:
        if (self.paper_id is None) == (self.paper is None):
            raise RequestError(
                "a journal query needs exactly one of 'paper_id' or 'paper'"
            )


@dataclass(frozen=True)
class AddPaper(Request):
    """Append a late submission to the problem and staff it."""

    kind: ClassVar[str] = "add_paper"

    paper: Paper | None = None
    reviewer_workload: int | None = None
    #: staffing shortlist width (top reviewers by score on the new paper)
    pool_size: int | None = None

    def __post_init__(self) -> None:
        if self.paper is None:
            raise RequestError("an add_paper request needs a 'paper'")


@dataclass(frozen=True)
class WithdrawReviewer(Request):
    """Remove a reviewer from the pool and re-staff their papers."""

    kind: ClassVar[str] = "withdraw_reviewer"

    reviewer_id: str = ""

    def __post_init__(self) -> None:
        if not self.reviewer_id:
            raise RequestError("a withdraw_reviewer request needs a 'reviewer_id'")


@dataclass(frozen=True)
class UpdateBids(Request):
    """Merge reviewer bids (``(reviewer_id, paper_id, value)`` triples)."""

    kind: ClassVar[str] = "update_bids"

    bids: tuple[tuple[str, str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.bids:
            raise RequestError("an update_bids request needs at least one bid")


@dataclass(frozen=True)
class Evaluate(Request):
    """Score the engine's current assignment."""

    kind: ClassVar[str] = "evaluate"

    include_ratio: bool = True
    include_per_paper: bool = False


@dataclass(frozen=True)
class Snapshot(Request):
    """Persist the engine state to a JSON snapshot file."""

    kind: ClassVar[str] = "snapshot"

    path: str = ""

    def __post_init__(self) -> None:
        if not self.path:
            raise RequestError("a snapshot request needs a 'path'")


@dataclass(frozen=True)
class Stats(Request):
    """Report engine, cache and session counters."""

    kind: ClassVar[str] = "stats"


@dataclass(frozen=True)
class Metrics(Request):
    """Export the metrics registry (latency histograms per request kind).

    ``format`` is ``"json"`` (structured snapshot with p50/p95/p99 per
    histogram) or ``"prometheus"`` (text exposition format in the
    ``exposition`` payload field).
    """

    kind: ClassVar[str] = "metrics"

    format: str = "json"

    def __post_init__(self) -> None:
        if self.format not in {"json", "prometheus"}:
            raise RequestError(
                f"unknown metrics format {self.format!r}; "
                "expected 'json' or 'prometheus'"
            )


@dataclass(frozen=True)
class Trace(Request):
    """Fetch a recorded span tree, or toggle trace recording.

    With ``enable`` set, recording is switched on/off and the current
    state is reported.  Otherwise the span tree of ``trace_id`` (or of
    the most recent finished trace, when omitted) is returned — every
    response carries its ``trace`` id, so a client can replay any
    recent request's breakdown.
    """

    kind: ClassVar[str] = "trace"

    trace_id: str | None = None
    enable: bool | None = None


@dataclass(frozen=True)
class Shutdown(Request):
    """End a serving loop cleanly."""

    kind: ClassVar[str] = "shutdown"


@dataclass(frozen=True)
class Fault(Request):
    """Inspect or arm the fault-injection registry (:mod:`repro.fault`).

    With no fields set, reports every failpoint site and its state.  With
    ``site`` and ``mode`` set, arms that site (``n``/``probability``/
    ``seed`` per mode); ``reset`` disarms ``site``, or every site when
    ``site`` is omitted.  Chaos tests drive this over the wire instead of
    restarting the server with a new ``REPRO_FAULT``.
    """

    kind: ClassVar[str] = "fault"

    site: str | None = None
    mode: str | None = None
    n: int | None = None
    probability: float | None = None
    seed: int | None = None
    reset: bool = False

    def __post_init__(self) -> None:
        if self.site is not None and self.mode is None and not self.reset:
            raise RequestError(
                "a fault request with a 'site' needs a 'mode' (or 'reset': true)"
            )


#: Request kinds that mutate engine state — exactly these are journaled
#: to the write-ahead log and deduplicated by idempotency key; everything
#: else is a read (or process-local control) and replays for free.
#: ``docs/durability.md`` renders this set and ``tests/test_docs.py``
#: pins the two in sync.
MUTATION_KINDS: frozenset[str] = frozenset(
    {"solve", "portfolio", "add_paper", "withdraw_reviewer", "update_bids"}
)


@dataclass(frozen=True)
class Response:
    """Outcome of one request.

    ``payload`` is always JSON-serialisable; errors carry the exception
    message in ``error`` with ``ok`` false, keep the request's kind so
    clients know which operation failed, and classify the failure in
    ``error_type`` so clients can branch without parsing messages:

    * ``"request"`` — malformed input (bad JSON, unknown kind, missing or
      ill-typed fields);
    * ``"unknown_solver"`` — a solver name not present in the registry;
    * ``"unknown_id"`` — a paper/reviewer id not part of the problem;
    * ``"infeasible"`` — the instance (or the requested mutation) admits
      no feasible assignment;
    * ``"configuration"`` — inconsistent options (bad ``top_k``, bad
      ``pool_size``, ...);
    * ``"solver"`` — a solver failed to produce a result;
    * ``"internal"`` — an unexpected failure; the serving loop reports
      the exception class and message instead of leaking a traceback.

    Responses produced by a session also carry observability fields:
    ``trace_id`` (emitted as ``"trace"``) names the span tree recorded
    for this request — fetchable later via a ``trace`` request — and
    ``elapsed_seconds`` (emitted as ``"seconds"``) is the wall time the
    session spent handling it.
    """

    kind: str
    ok: bool
    payload: Mapping[str, Any] = field(default_factory=dict)
    error: str | None = None
    error_type: str | None = None
    request_id: str | int | None = None
    trace_id: str | None = None
    elapsed_seconds: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (one line of the serve loop)."""
        result: dict[str, Any] = {"kind": self.kind, "ok": self.ok}
        if self.request_id is not None:
            result["id"] = self.request_id
        if self.ok:
            result["payload"] = dict(self.payload)
        else:
            result["error"] = self.error or "unknown error"
            result["error_type"] = self.error_type or "internal"
        if self.trace_id is not None:
            result["trace"] = self.trace_id
        if self.elapsed_seconds is not None:
            result["seconds"] = self.elapsed_seconds
        return result

    @classmethod
    def failure(
        cls,
        kind: str,
        error: str,
        request_id: str | int | None = None,
        error_type: str = "request",
        trace_id: str | None = None,
        elapsed_seconds: float | None = None,
    ) -> "Response":
        """Shorthand for an error response."""
        return cls(
            kind=kind,
            ok=False,
            error=error,
            error_type=error_type,
            request_id=request_id,
            trace_id=trace_id,
            elapsed_seconds=elapsed_seconds,
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Response":
        """Inverse of :meth:`to_dict` (checkpointed idempotency maps)."""
        ok = bool(payload.get("ok"))
        return cls(
            kind=str(payload.get("kind", "")),
            ok=ok,
            payload=dict(payload.get("payload") or {}) if ok else {},
            error=payload.get("error"),
            error_type=payload.get("error_type"),
            request_id=payload.get("id"),
            trace_id=payload.get("trace"),
            elapsed_seconds=payload.get("seconds"),
        )


# ----------------------------------------------------------------------
# Dict codecs
# ----------------------------------------------------------------------
_REQUEST_TYPES: dict[str, type[Request]] = {
    cls.kind: cls
    for cls in (
        SolveRequest,
        PortfolioSolve,
        JournalQuery,
        AddPaper,
        WithdrawReviewer,
        UpdateBids,
        Evaluate,
        Snapshot,
        Stats,
        Metrics,
        Trace,
        Shutdown,
        Fault,
    )
}


def paper_from_payload(payload: Mapping[str, Any]) -> Paper:
    """Build a :class:`Paper` from its JSON representation.

    The format matches the ``papers`` entries of the problem files written
    by :mod:`repro.data.io`: ``{"id": ..., "vector": [...], "title": ...}``.
    """
    if not isinstance(payload, Mapping):
        raise RequestError("a paper must be a JSON object")
    try:
        paper_id = payload["id"]
        vector = payload["vector"]
    except KeyError as missing:
        raise RequestError(f"a paper payload needs an {missing.args[0]!r} field") from None
    try:
        return Paper(
            id=str(paper_id),
            vector=TopicVector(vector),
            title=str(payload.get("title", "")),
            abstract=str(payload.get("abstract", "")),
        )
    except Exception as exc:  # vector shape/type problems become request errors
        raise RequestError(f"malformed paper payload: {exc}") from exc


def paper_to_payload(paper: Paper) -> dict[str, Any]:
    """Inverse of :func:`paper_from_payload`."""
    return {
        "id": paper.id,
        "title": paper.title,
        "abstract": paper.abstract,
        "vector": paper.vector.to_list(),
    }


def _parse_bids(raw: Any) -> tuple[tuple[str, str, float], ...]:
    if not isinstance(raw, Iterable) or isinstance(raw, (str, bytes, Mapping)):
        raise RequestError("'bids' must be a list of [reviewer_id, paper_id, value]")
    bids: list[tuple[str, str, float]] = []
    for entry in raw:
        try:
            reviewer_id, paper_id, value = entry
            bids.append((str(reviewer_id), str(paper_id), float(value)))
        except (TypeError, ValueError):
            raise RequestError(
                f"malformed bid entry {entry!r}; expected [reviewer_id, paper_id, value]"
            ) from None
    return tuple(bids)


def request_from_dict(payload: Mapping[str, Any]) -> Request:
    """Parse one JSON-decoded request object into a typed request.

    Raises
    ------
    RequestError
        For unknown kinds, missing fields or malformed nested payloads.
    """
    if not isinstance(payload, Mapping):
        raise RequestError("a request must be a JSON object")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise RequestError("a request needs a string 'kind' field")
    try:
        request_type = _REQUEST_TYPES[kind.lower()]
    except KeyError:
        raise RequestError(
            f"unknown request kind {kind!r}; known kinds: {sorted(_REQUEST_TYPES)}"
        ) from None

    request_id = payload.get("id")
    fields: dict[str, Any] = {"request_id": request_id}
    try:
        if payload.get("seq") is not None:
            client_seq = payload["seq"]
            if isinstance(client_seq, bool) or not isinstance(client_seq, int):
                raise RequestError("'seq' must be an integer idempotency key")
            fields["client_seq"] = client_seq
        if request_type is SolveRequest:
            fields["solver"] = str(payload.get("solver", "SDGA-SRA"))
            options = payload.get("options", {})
            if not isinstance(options, Mapping):
                raise RequestError("'options' must be a JSON object")
            fields["options"] = dict(options)
        elif request_type is PortfolioSolve:
            solvers = payload.get("solvers", [])
            if isinstance(solvers, (str, bytes)) or not isinstance(solvers, Iterable):
                raise RequestError("'solvers' must be a list of solver names")
            fields["solvers"] = tuple(str(name) for name in solvers)
            if payload.get("deadline") is not None:
                fields["deadline"] = float(payload["deadline"])
            options = payload.get("options", {})
            if not isinstance(options, Mapping):
                raise RequestError("'options' must be a JSON object")
            fields["options"] = dict(options)
        elif request_type is JournalQuery:
            if "paper" in payload:
                fields["paper"] = paper_from_payload(payload["paper"])
            if "paper_id" in payload:
                fields["paper_id"] = str(payload["paper_id"])
            for name in ("group_size", "top_k", "pool_size", "prune"):
                if payload.get(name) is not None:
                    fields[name] = int(payload[name])
            fields["solver"] = str(payload.get("solver", "BBA"))
        elif request_type is AddPaper:
            if "paper" not in payload:
                raise RequestError("an add_paper request needs a 'paper'")
            fields["paper"] = paper_from_payload(payload["paper"])
            for name in ("reviewer_workload", "pool_size"):
                if payload.get(name) is not None:
                    fields[name] = int(payload[name])
        elif request_type is WithdrawReviewer:
            fields["reviewer_id"] = str(payload.get("reviewer_id", ""))
        elif request_type is UpdateBids:
            fields["bids"] = _parse_bids(payload.get("bids"))
        elif request_type is Evaluate:
            fields["include_ratio"] = bool(payload.get("include_ratio", True))
            fields["include_per_paper"] = bool(payload.get("include_per_paper", False))
        elif request_type is Snapshot:
            fields["path"] = str(payload.get("path", ""))
        elif request_type is Metrics:
            fields["format"] = str(payload.get("format", "json"))
        elif request_type is Trace:
            if payload.get("trace_id") is not None:
                fields["trace_id"] = str(payload["trace_id"])
            if payload.get("enable") is not None:
                fields["enable"] = bool(payload["enable"])
        elif request_type is Fault:
            if payload.get("site") is not None:
                fields["site"] = str(payload["site"])
            if payload.get("mode") is not None:
                fields["mode"] = str(payload["mode"])
            for name in ("n", "seed"):
                if payload.get(name) is not None:
                    fields[name] = int(payload[name])
            if payload.get("probability") is not None:
                fields["probability"] = float(payload["probability"])
            fields["reset"] = bool(payload.get("reset", False))
        return request_type(**fields)
    except RequestError:
        raise
    except (TypeError, ValueError) as exc:
        raise RequestError(f"malformed {kind!r} request: {exc}") from exc


def request_to_dict(request: Request) -> dict[str, Any]:
    """JSON-serialisable representation of a typed request."""
    payload: dict[str, Any] = {"kind": request.kind}
    if request.request_id is not None:
        payload["id"] = request.request_id
    if request.client_seq is not None:
        payload["seq"] = request.client_seq
    if isinstance(request, SolveRequest):
        payload["solver"] = request.solver
        if request.options:
            payload["options"] = dict(request.options)
    elif isinstance(request, PortfolioSolve):
        if request.solvers:
            payload["solvers"] = list(request.solvers)
        if request.deadline is not None:
            payload["deadline"] = request.deadline
        if request.options:
            payload["options"] = dict(request.options)
    elif isinstance(request, JournalQuery):
        if request.paper_id is not None:
            payload["paper_id"] = request.paper_id
        if request.paper is not None:
            payload["paper"] = paper_to_payload(request.paper)
        for name in ("group_size", "top_k", "pool_size", "prune"):
            value = getattr(request, name)
            if value is not None:
                payload[name] = value
        payload["solver"] = request.solver
    elif isinstance(request, AddPaper):
        payload["paper"] = paper_to_payload(request.paper)
        if request.reviewer_workload is not None:
            payload["reviewer_workload"] = request.reviewer_workload
        if request.pool_size is not None:
            payload["pool_size"] = request.pool_size
    elif isinstance(request, WithdrawReviewer):
        payload["reviewer_id"] = request.reviewer_id
    elif isinstance(request, UpdateBids):
        payload["bids"] = [list(bid) for bid in request.bids]
    elif isinstance(request, Evaluate):
        payload["include_ratio"] = request.include_ratio
        payload["include_per_paper"] = request.include_per_paper
    elif isinstance(request, Snapshot):
        payload["path"] = request.path
    elif isinstance(request, Metrics):
        payload["format"] = request.format
    elif isinstance(request, Trace):
        if request.trace_id is not None:
            payload["trace_id"] = request.trace_id
        if request.enable is not None:
            payload["enable"] = request.enable
    elif isinstance(request, Fault):
        for name in ("site", "mode", "n", "probability", "seed"):
            value = getattr(request, name)
            if value is not None:
                payload[name] = value
        if request.reset:
            payload["reset"] = True
    return payload
