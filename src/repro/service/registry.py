"""String-keyed solver registry for the assignment engine.

The scoring functions of :mod:`repro.core.scoring` are already looked up by
name through a registry; this module gives the CRA and JRA solvers the same
treatment so that *requests* — CLI flags, JSON-lines messages, snapshot
metadata — can name solvers by string without every entry point hard-coding
its own ``if name == ...`` ladder.

Every solver ships with a factory that accepts free-form keyword options
and ignores the ones it does not understand, so one request schema
(``{"solver": "SDGA-SRA", "options": {...}}``) can configure any solver.
Canonical names are the short names the paper uses (``"SDGA"``, ``"BBA"``,
...); lookups are case-insensitive and accept the registered aliases:

>>> from repro.service.registry import available_solvers, create_solver, solver_spec
>>> available_solvers("jra")
['BBA', 'BFS', 'CP', 'CP-FIRST', 'ILP']
>>> solver_spec("cra", "sra").name          # alias, case-insensitive
'SDGA-SRA'
>>> create_solver("jra", "bba").name        # a configured solver instance
'BBA'
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.cra.base import CRASolver
from repro.cra.brgg import BestReviewerGroupGreedySolver
from repro.cra.exact import ExhaustiveSolver
from repro.cra.greedy import GreedySolver
from repro.cra.ilp import PairwiseILPSolver
from repro.cra.local_search import LocalSearchRefiner, SDGAWithLocalSearchSolver
from repro.cra.ratio import RatioGreedySolver
from repro.cra.repair import RefillRepairSolver
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import SDGAWithRefinementSolver, StochasticRefiner
from repro.cra.stable_matching import StableMatchingSolver
from repro.exceptions import ConfigurationError, UnknownSolverError
from repro.jra.base import JRASolver
from repro.jra.bba import BranchAndBoundSolver
from repro.jra.brute_force import BruteForceSolver
from repro.jra.cp import ConstraintProgrammingSolver
from repro.jra.ilp import ILPSolver

__all__ = [
    "SolverSpec",
    "register_solver",
    "create_solver",
    "solver_spec",
    "available_solvers",
    "available_solver_specs",
]


@dataclass(frozen=True)
class SolverSpec:
    """One registry entry.

    Attributes
    ----------
    name:
        Canonical (paper) name of the solver.
    kind:
        ``"cra"`` (conference assignment) or ``"jra"`` (journal assignment).
    factory:
        Callable building a configured solver instance from keyword options.
    description:
        One-line human description shown by discovery helpers.
    aliases:
        Extra lookup names (canonical name included automatically).
    tags:
        Capability markers consumed by the documentation tests and the
        conformance harness:

        * ``"dense"`` — the solver runs on the compiled
          :class:`~repro.core.dense.DenseProblem` fast path *and* accepts
          a ``use_dense=False`` option selecting its object-path oracle
          (the harness diffs the two bitwise);
        * ``"delta"`` — the solver consumes delta-maintained state (the
          shared pair-score matrix, the patched feasibility mask), so it
          must — and is checked to — produce bitwise-identical results on
          a mutated problem chain and on a cold recompile;
        * ``"exponential"`` — worst-case exponential running time; the
          full-registry portfolio line-up
          (:func:`repro.parallel.portfolio.full_portfolio`) excludes it.
    """

    name: str
    kind: str
    factory: Callable[..., Any]
    description: str = ""
    aliases: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()


_KINDS = ("cra", "jra")
_REGISTRY: dict[tuple[str, str], SolverSpec] = {}


def register_solver(spec: SolverSpec) -> SolverSpec:
    """Register a solver spec under its canonical name and aliases."""
    if spec.kind not in _KINDS:
        raise ConfigurationError(f"unknown solver kind {spec.kind!r}; use one of {_KINDS}")
    for alias in {spec.name, *spec.aliases}:
        _REGISTRY[(spec.kind, alias.lower())] = spec
    return spec


def solver_spec(kind: str, name: str) -> SolverSpec:
    """Look up the spec for a solver name (case-insensitive).

    Raises
    ------
    UnknownSolverError
        When no solver of that kind is registered under the name.
    """
    try:
        return _REGISTRY[(kind, name.strip().lower())]
    except KeyError:
        raise UnknownSolverError(
            f"unknown {kind.upper()} solver {name!r}; "
            f"available: {', '.join(available_solvers(kind))}"
        ) from None


def create_solver(kind: str, name: str, **options: Any) -> Any:
    """Instantiate a registered solver by name.

    ``options`` are forwarded to the solver's factory; options the factory
    does not understand are ignored, so callers can pass one configuration
    blob to any solver.
    """
    return solver_spec(kind, name).factory(**options)


def available_solvers(kind: str | None = None) -> list[str]:
    """Sorted canonical names of the registered solvers.

    Pass ``kind`` (``"cra"`` or ``"jra"``) to restrict the listing.
    """
    return sorted({spec.name for spec in available_solver_specs(kind)})


def available_solver_specs(kind: str | None = None) -> list[SolverSpec]:
    """The registered solver specs, unique and sorted by canonical name.

    This is the discovery hook behind ``docs/solvers.md`` and the solver
    reference test: everything a spec declares (name, aliases,
    description) is available to generate or validate documentation.
    """
    unique: dict[str, SolverSpec] = {}
    for (spec_kind, _), spec in _REGISTRY.items():
        if kind is None or spec_kind == kind:
            unique[f"{spec.kind}:{spec.name}"] = spec
    return sorted(unique.values(), key=lambda spec: (spec.kind, spec.name))


# ----------------------------------------------------------------------
# Built-in conference (CRA) solvers
# ----------------------------------------------------------------------
def _make_sm(use_dense: bool = True, **_: Any) -> CRASolver:
    return StableMatchingSolver(use_dense=use_dense)


def _make_ilp_cra(**_: Any) -> CRASolver:
    return PairwiseILPSolver()


def _make_brgg(use_dense: bool = True, **_: Any) -> CRASolver:
    return BestReviewerGroupGreedySolver(use_dense=use_dense)


def _make_greedy(
    use_dense: bool = True,
    prune: bool = True,
    prune_width: int | None = None,
    lazy_heap: bool | None = None,
    **_: Any,
) -> CRASolver:
    # The object oracle for Greedy is the *naive* re-scan, not the lazy
    # heap: the heap's stale records reorder exact-gain ties (a documented
    # divergence the conformance harness pinned), so ``use_dense=False``
    # selects true-argmax selection through the object layer.  Pass
    # ``lazy_heap`` explicitly to override.
    if lazy_heap is None:
        lazy_heap = use_dense
    return GreedySolver(
        use_lazy_heap=lazy_heap,
        use_dense=use_dense,
        prune=prune,
        prune_width=prune_width,
    )


def _make_ratio_greedy(use_dense: bool = True, **_: Any) -> CRASolver:
    return RatioGreedySolver(use_dense=use_dense)


def _make_repair(
    backend: str = "hungarian", use_dense: bool = True, **_: Any
) -> CRASolver:
    return RefillRepairSolver(backend=backend, use_dense=use_dense)


def _make_sdga(backend: str = "hungarian", use_dense: bool = True, **_: Any) -> CRASolver:
    return StageDeepeningGreedySolver(backend=backend, use_dense=use_dense)


def _make_sdga_sra(
    convergence_window: int = 10,
    seed: int | None = 7,
    use_dense: bool = True,
    **_: Any,
) -> CRASolver:
    return SDGAWithRefinementSolver(
        refiner=StochasticRefiner(
            convergence_window=convergence_window, seed=seed, use_dense=use_dense
        ),
        base_solver=StageDeepeningGreedySolver(use_dense=use_dense),
    )


def _make_sdga_ls(use_dense: bool = True, **_: Any) -> CRASolver:
    return SDGAWithLocalSearchSolver(
        refiner=LocalSearchRefiner(use_dense=use_dense),
        base_solver=StageDeepeningGreedySolver(use_dense=use_dense),
    )


def _make_bid_sdga(
    bids: Any = None,
    tradeoff: float = 0.5,
    backend: str = "hungarian",
    use_dense: bool = True,
    **_: Any,
) -> CRASolver:
    # Imported here: repro.extensions sits above the service layer and
    # importing it eagerly would create a cycle through the engine.
    from repro.extensions.bidding import BidAwareObjective, BidAwareSDGASolver, BidMatrix

    if bids is None:
        matrix = BidMatrix()
    elif isinstance(bids, BidMatrix):
        matrix = bids
    elif isinstance(bids, Mapping):
        matrix = BidMatrix(bids)
    else:  # an iterable of (reviewer_id, paper_id, value) triples (JSON form)
        matrix = BidMatrix()
        for reviewer_id, paper_id, value in bids:
            matrix.set(str(reviewer_id), str(paper_id), float(value))
    return BidAwareSDGASolver(
        objective=BidAwareObjective(bids=matrix, tradeoff=float(tradeoff)),
        backend=backend,
        use_dense=use_dense,
    )


def _make_exhaustive(**_: Any) -> CRASolver:
    return ExhaustiveSolver()


register_solver(
    SolverSpec(
        name="SM",
        kind="cra",
        factory=_make_sm,
        description="stable-matching baseline (Long et al.)",
        aliases=("stable-matching",),
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="ILP",
        kind="cra",
        factory=_make_ilp_cra,
        description="pairwise ILP baseline (the ARAP objective)",
        tags=("delta", "exponential"),
    )
)
register_solver(
    SolverSpec(
        name="BRGG",
        kind="cra",
        factory=_make_brgg,
        description="best reviewer group greedy baseline",
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="Greedy",
        kind="cra",
        factory=_make_greedy,
        description="1/3-approximation pair greedy (Long et al. 2013)",
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="Ratio-Greedy",
        kind="cra",
        factory=_make_ratio_greedy,
        description="capacity-aware pair greedy (gain x remaining-workload fraction)",
        aliases=("ratio",),
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="Repair",
        kind="cra",
        factory=_make_repair,
        description="repair/refill pass run from an empty assignment",
        aliases=("refill",),
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="SDGA",
        kind="cra",
        factory=_make_sdga,
        description="stage deepening greedy algorithm (the paper's 1/2-approx)",
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="SDGA-SRA",
        kind="cra",
        factory=_make_sdga_sra,
        description="SDGA plus stochastic refinement (the paper's best method)",
        aliases=("SRA",),
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="SDGA-LS",
        kind="cra",
        factory=_make_sdga_ls,
        description="SDGA plus deterministic local-search refinement",
        aliases=("LS",),
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="Bid-SDGA",
        kind="cra",
        factory=_make_bid_sdga,
        description="SDGA on the combined coverage + reviewer-bid objective",
        aliases=("bidding",),
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="Exhaustive",
        kind="cra",
        factory=_make_exhaustive,
        description="exact exponential search (tiny instances only)",
        aliases=("exact",),
        tags=("exponential",),
    )
)


# ----------------------------------------------------------------------
# Built-in journal (JRA) solvers
# ----------------------------------------------------------------------
def _make_bba(top_k: int = 1, use_dense: bool = True, **_: Any) -> JRASolver:
    return BranchAndBoundSolver(top_k=top_k, use_dense=use_dense)


def _make_bfs(top_k: int = 1, **_: Any) -> JRASolver:
    return BruteForceSolver(top_k=top_k)


def _make_ilp_jra(time_limit: float | None = None, **_: Any) -> JRASolver:
    return ILPSolver(time_limit=time_limit)


def _make_cp(**_: Any) -> JRASolver:
    return ConstraintProgrammingSolver()


def _make_cp_first(**_: Any) -> JRASolver:
    return ConstraintProgrammingSolver(first_solution_only=True)


register_solver(
    SolverSpec(
        name="BBA",
        kind="jra",
        factory=_make_bba,
        description="exact branch-and-bound (the paper's fast JRA solver)",
        tags=("dense", "delta"),
    )
)
register_solver(
    SolverSpec(
        name="BFS",
        kind="jra",
        factory=_make_bfs,
        description="exhaustive enumeration baseline",
        aliases=("brute-force",),
        tags=("delta",),
    )
)
register_solver(
    SolverSpec(
        name="ILP",
        kind="jra",
        factory=_make_ilp_jra,
        description="ILP formulation solved by branch-and-bound over LP relaxations",
    )
)
register_solver(
    SolverSpec(
        name="CP",
        kind="jra",
        factory=_make_cp,
        description="generic constraint-programming search",
    )
)
register_solver(
    SolverSpec(
        name="CP-FIRST",
        kind="jra",
        factory=_make_cp_first,
        description="constraint programming, first feasible solution only",
    )
)
