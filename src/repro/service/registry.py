"""String-keyed solver registry for the assignment engine.

The scoring functions of :mod:`repro.core.scoring` are already looked up by
name through a registry; this module gives the CRA and JRA solvers the same
treatment so that *requests* — CLI flags, JSON-lines messages, snapshot
metadata — can name solvers by string without every entry point hard-coding
its own ``if name == ...`` ladder.

Every solver ships with a factory that accepts free-form keyword options
and ignores the ones it does not understand, so one request schema
(``{"solver": "SDGA-SRA", "options": {...}}``) can configure any solver.
Canonical names are the short names the paper uses (``"SDGA"``, ``"BBA"``,
...); lookups are case-insensitive and accept the registered aliases:

>>> from repro.service.registry import available_solvers, create_solver, solver_spec
>>> available_solvers("jra")
['BBA', 'BFS', 'CP', 'CP-FIRST', 'ILP']
>>> solver_spec("cra", "sra").name          # alias, case-insensitive
'SDGA-SRA'
>>> create_solver("jra", "bba").name        # a configured solver instance
'BBA'
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.cra.base import CRASolver
from repro.cra.brgg import BestReviewerGroupGreedySolver
from repro.cra.exact import ExhaustiveSolver
from repro.cra.greedy import GreedySolver
from repro.cra.ilp import PairwiseILPSolver
from repro.cra.local_search import LocalSearchRefiner, SDGAWithLocalSearchSolver
from repro.cra.sdga import StageDeepeningGreedySolver
from repro.cra.sra import SDGAWithRefinementSolver, StochasticRefiner
from repro.cra.stable_matching import StableMatchingSolver
from repro.exceptions import ConfigurationError, UnknownSolverError
from repro.jra.base import JRASolver
from repro.jra.bba import BranchAndBoundSolver
from repro.jra.brute_force import BruteForceSolver
from repro.jra.cp import ConstraintProgrammingSolver
from repro.jra.ilp import ILPSolver

__all__ = [
    "SolverSpec",
    "register_solver",
    "create_solver",
    "solver_spec",
    "available_solvers",
    "available_solver_specs",
]


@dataclass(frozen=True)
class SolverSpec:
    """One registry entry.

    Attributes
    ----------
    name:
        Canonical (paper) name of the solver.
    kind:
        ``"cra"`` (conference assignment) or ``"jra"`` (journal assignment).
    factory:
        Callable building a configured solver instance from keyword options.
    description:
        One-line human description shown by discovery helpers.
    aliases:
        Extra lookup names (canonical name included automatically).
    """

    name: str
    kind: str
    factory: Callable[..., Any]
    description: str = ""
    aliases: tuple[str, ...] = ()


_KINDS = ("cra", "jra")
_REGISTRY: dict[tuple[str, str], SolverSpec] = {}


def register_solver(spec: SolverSpec) -> SolverSpec:
    """Register a solver spec under its canonical name and aliases."""
    if spec.kind not in _KINDS:
        raise ConfigurationError(f"unknown solver kind {spec.kind!r}; use one of {_KINDS}")
    for alias in {spec.name, *spec.aliases}:
        _REGISTRY[(spec.kind, alias.lower())] = spec
    return spec


def solver_spec(kind: str, name: str) -> SolverSpec:
    """Look up the spec for a solver name (case-insensitive).

    Raises
    ------
    UnknownSolverError
        When no solver of that kind is registered under the name.
    """
    try:
        return _REGISTRY[(kind, name.strip().lower())]
    except KeyError:
        raise UnknownSolverError(
            f"unknown {kind.upper()} solver {name!r}; "
            f"available: {', '.join(available_solvers(kind))}"
        ) from None


def create_solver(kind: str, name: str, **options: Any) -> Any:
    """Instantiate a registered solver by name.

    ``options`` are forwarded to the solver's factory; options the factory
    does not understand are ignored, so callers can pass one configuration
    blob to any solver.
    """
    return solver_spec(kind, name).factory(**options)


def available_solvers(kind: str | None = None) -> list[str]:
    """Sorted canonical names of the registered solvers.

    Pass ``kind`` (``"cra"`` or ``"jra"``) to restrict the listing.
    """
    return sorted({spec.name for spec in available_solver_specs(kind)})


def available_solver_specs(kind: str | None = None) -> list[SolverSpec]:
    """The registered solver specs, unique and sorted by canonical name.

    This is the discovery hook behind ``docs/solvers.md`` and the solver
    reference test: everything a spec declares (name, aliases,
    description) is available to generate or validate documentation.
    """
    unique: dict[str, SolverSpec] = {}
    for (spec_kind, _), spec in _REGISTRY.items():
        if kind is None or spec_kind == kind:
            unique[f"{spec.kind}:{spec.name}"] = spec
    return sorted(unique.values(), key=lambda spec: (spec.kind, spec.name))


# ----------------------------------------------------------------------
# Built-in conference (CRA) solvers
# ----------------------------------------------------------------------
def _make_sm(**_: Any) -> CRASolver:
    return StableMatchingSolver()


def _make_ilp_cra(**_: Any) -> CRASolver:
    return PairwiseILPSolver()


def _make_brgg(**_: Any) -> CRASolver:
    return BestReviewerGroupGreedySolver()


def _make_greedy(**_: Any) -> CRASolver:
    return GreedySolver()


def _make_sdga(**_: Any) -> CRASolver:
    return StageDeepeningGreedySolver()


def _make_sdga_sra(
    convergence_window: int = 10, seed: int | None = 7, **_: Any
) -> CRASolver:
    return SDGAWithRefinementSolver(
        refiner=StochasticRefiner(convergence_window=convergence_window, seed=seed)
    )


def _make_sdga_ls(**_: Any) -> CRASolver:
    return SDGAWithLocalSearchSolver(refiner=LocalSearchRefiner())


def _make_exhaustive(**_: Any) -> CRASolver:
    return ExhaustiveSolver()


register_solver(
    SolverSpec(
        name="SM",
        kind="cra",
        factory=_make_sm,
        description="stable-matching baseline (Long et al.)",
        aliases=("stable-matching",),
    )
)
register_solver(
    SolverSpec(
        name="ILP",
        kind="cra",
        factory=_make_ilp_cra,
        description="pairwise ILP baseline (the ARAP objective)",
    )
)
register_solver(
    SolverSpec(
        name="BRGG",
        kind="cra",
        factory=_make_brgg,
        description="best reviewer group greedy baseline",
    )
)
register_solver(
    SolverSpec(
        name="Greedy",
        kind="cra",
        factory=_make_greedy,
        description="1/3-approximation pair greedy (Long et al. 2013)",
    )
)
register_solver(
    SolverSpec(
        name="SDGA",
        kind="cra",
        factory=_make_sdga,
        description="stage deepening greedy algorithm (the paper's 1/2-approx)",
    )
)
register_solver(
    SolverSpec(
        name="SDGA-SRA",
        kind="cra",
        factory=_make_sdga_sra,
        description="SDGA plus stochastic refinement (the paper's best method)",
        aliases=("SRA",),
    )
)
register_solver(
    SolverSpec(
        name="SDGA-LS",
        kind="cra",
        factory=_make_sdga_ls,
        description="SDGA plus deterministic local-search refinement",
        aliases=("LS",),
    )
)
register_solver(
    SolverSpec(
        name="Exhaustive",
        kind="cra",
        factory=_make_exhaustive,
        description="exact exponential search (tiny instances only)",
        aliases=("exact",),
    )
)


# ----------------------------------------------------------------------
# Built-in journal (JRA) solvers
# ----------------------------------------------------------------------
def _make_bba(top_k: int = 1, **_: Any) -> JRASolver:
    return BranchAndBoundSolver(top_k=top_k)


def _make_bfs(top_k: int = 1, **_: Any) -> JRASolver:
    return BruteForceSolver(top_k=top_k)


def _make_ilp_jra(time_limit: float | None = None, **_: Any) -> JRASolver:
    return ILPSolver(time_limit=time_limit)


def _make_cp(**_: Any) -> JRASolver:
    return ConstraintProgrammingSolver()


def _make_cp_first(**_: Any) -> JRASolver:
    return ConstraintProgrammingSolver(first_solution_only=True)


register_solver(
    SolverSpec(
        name="BBA",
        kind="jra",
        factory=_make_bba,
        description="exact branch-and-bound (the paper's fast JRA solver)",
    )
)
register_solver(
    SolverSpec(
        name="BFS",
        kind="jra",
        factory=_make_bfs,
        description="exhaustive enumeration baseline",
        aliases=("brute-force",),
    )
)
register_solver(
    SolverSpec(
        name="ILP",
        kind="jra",
        factory=_make_ilp_jra,
        description="ILP formulation solved by branch-and-bound over LP relaxations",
    )
)
register_solver(
    SolverSpec(
        name="CP",
        kind="jra",
        factory=_make_cp,
        description="generic constraint-programming search",
    )
)
register_solver(
    SolverSpec(
        name="CP-FIRST",
        kind="jra",
        factory=_make_cp_first,
        description="constraint programming, first feasible solution only",
    )
)
