"""Command-line interface for the WGRAP library.

The ``wgrap`` command exposes the most common workflows:

* ``wgrap generate`` — create a synthetic problem file (JSON).
* ``wgrap solve``    — run a conference-assignment solver on a problem file.
* ``wgrap journal``  — find the best reviewer group for one paper of a
  problem file (JRA).
* ``wgrap evaluate`` — score an existing assignment against a problem.

All files use the JSON formats of :mod:`repro.data.io`.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.data.io import load_assignment, load_problem, save_assignment, save_problem
from repro.data.synthetic import SyntheticWorkloadGenerator
from repro.experiments.runner import DEFAULT_CRA_METHODS, make_cra_solver
from repro.jra.bba import BranchAndBoundSolver
from repro.metrics.quality import lowest_coverage_score, optimality_ratio

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="wgrap",
        description="Weighted Coverage based Reviewer Assignment (SIGMOD 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic problem file")
    generate.add_argument("output", help="path of the JSON problem file to write")
    generate.add_argument("--papers", type=int, default=60, help="number of papers")
    generate.add_argument("--reviewers", type=int, default=25, help="number of reviewers")
    generate.add_argument("--topics", type=int, default=30, help="number of topics")
    generate.add_argument("--group-size", type=int, default=3, help="reviewers per paper")
    generate.add_argument(
        "--workload", type=int, default=None, help="max papers per reviewer (default: minimal)"
    )
    generate.add_argument("--seed", type=int, default=0, help="random seed")

    solve = subparsers.add_parser("solve", help="solve a conference assignment")
    solve.add_argument("problem", help="path of the JSON problem file")
    solve.add_argument("output", help="path of the JSON assignment file to write")
    solve.add_argument(
        "--method",
        default="SDGA-SRA",
        choices=sorted({*DEFAULT_CRA_METHODS, "SDGA-LS"}),
        help="assignment method",
    )

    journal = subparsers.add_parser("journal", help="find the best group for one paper")
    journal.add_argument("problem", help="path of the JSON problem file")
    journal.add_argument("paper_id", help="id of the paper to staff")
    journal.add_argument("--group-size", type=int, default=None,
                         help="override the problem's group size")

    evaluate = subparsers.add_parser("evaluate", help="score an existing assignment")
    evaluate.add_argument("problem", help="path of the JSON problem file")
    evaluate.add_argument("assignment", help="path of the JSON assignment file")

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    generator = SyntheticWorkloadGenerator(num_topics=args.topics, seed=args.seed)
    problem = generator.generate_problem(
        num_papers=args.papers,
        num_reviewers=args.reviewers,
        group_size=args.group_size,
        reviewer_workload=args.workload,
    )
    path = save_problem(problem, args.output)
    print(
        f"wrote {path}: {problem.num_papers} papers, {problem.num_reviewers} reviewers, "
        f"delta_p={problem.group_size}, delta_r={problem.reviewer_workload}"
    )
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    solver = make_cra_solver(args.method)
    result = solver.solve(problem)
    save_assignment(result.assignment, args.output)
    ratio = optimality_ratio(problem, result.assignment)
    print(
        f"{solver.name}: coverage score {result.score:.4f}, "
        f"optimality ratio {ratio:.4f}, "
        f"lowest coverage {lowest_coverage_score(problem, result.assignment):.4f}, "
        f"time {result.elapsed_seconds:.2f}s"
    )
    print(f"wrote assignment to {args.output}")
    return 0


def _command_journal(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    jra = problem.to_jra(args.paper_id)
    if args.group_size is not None:
        jra = type(jra)(
            paper=jra.paper,
            reviewers=jra.reviewers,
            group_size=args.group_size,
            scoring=jra.scoring,
        )
    result = BranchAndBoundSolver().solve(jra)
    print(f"best group for paper {args.paper_id!r} (score {result.score:.4f}):")
    for reviewer_id in result.reviewer_ids:
        print(f"  - {reviewer_id}")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    assignment = load_assignment(args.assignment)
    problem.validate_assignment(assignment, require_complete=False)
    score = problem.assignment_score(assignment)
    print(f"coverage score: {score:.4f}")
    print(f"optimality ratio: {optimality_ratio(problem, assignment):.4f}")
    print(f"lowest per-paper coverage: {lowest_coverage_score(problem, assignment):.4f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``wgrap`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "solve": _command_solve,
        "journal": _command_journal,
        "evaluate": _command_evaluate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
