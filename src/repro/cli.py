"""Command-line interface for the WGRAP library.

The ``wgrap`` command (also installed as ``repro``) exposes the most common
workflows:

* ``wgrap generate`` — create a synthetic problem file (JSON).
* ``wgrap solve``    — run a conference-assignment solver on a problem
  file; ``--portfolio`` races several solvers and keeps the best result,
  ``--deadline`` bounds the race in seconds.
* ``wgrap journal``  — find the best reviewer group for one paper of a
  problem file (JRA).
* ``wgrap evaluate`` — score an existing assignment against a problem.
* ``wgrap serve``    — keep a resident assignment engine and answer
  JSON-lines requests over stdio (one request per input line, one
  response per output line).
* ``wgrap session``  — replay a scripted JSON-lines request file against a
  fresh engine, with batching, and optionally snapshot the final state.
* ``wgrap wal``      — inspect a ``--wal-dir`` root offline: per-tenant
  checkpoint/last seqs, segment files, record counts and torn-tail bytes.
* ``wgrap store``    — compile a JSON/CSV problem snapshot into a SQLite
  problem store (``import``), export a store back to JSON/CSV
  (``export``), or print its row/index statistics (``info``).

``solve``, ``serve`` and ``session`` also accept ``--store path.db`` to
work from a SQLite problem store instead of a JSON problem file; see
``docs/storage.md``.

``solve``, ``serve`` and ``session`` accept ``--workers N`` to enable the
worker-pool execution layer of :mod:`repro.parallel` (``0`` = one worker
per CPU core): score matrices are then built by the sharded kernel and
portfolio members race in separate processes, with results identical to
the serial paths.

All files use the JSON formats of :mod:`repro.data.io`.  Solver names for
``--method`` / ``--solver`` / ``--portfolio`` are validated against the
string-keyed solver registry of :mod:`repro.service.registry`.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.cra import available_solvers as available_cra_solvers
from repro.data.io import load_assignment, load_problem, save_assignment, save_problem
from repro.data.synthetic import SyntheticWorkloadGenerator
from repro.jra import available_solvers as available_jra_solvers
from repro.metrics.quality import lowest_coverage_score, optimality_ratio
from repro.parallel import DEFAULT_PORTFOLIO, ParallelConfig, run_portfolio
from repro.service.engine import AssignmentEngine
from repro.service.registry import create_solver
from repro.service.session import EngineSession, serve_stream
from repro.service.requests import request_from_dict

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="wgrap",
        description="Weighted Coverage based Reviewer Assignment (SIGMOD 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic problem file")
    generate.add_argument("output", help="path of the JSON problem file to write")
    generate.add_argument("--papers", type=int, default=60, help="number of papers")
    generate.add_argument("--reviewers", type=int, default=25, help="number of reviewers")
    generate.add_argument("--topics", type=int, default=30, help="number of topics")
    generate.add_argument("--group-size", type=int, default=3, help="reviewers per paper")
    generate.add_argument(
        "--workload", type=int, default=None, help="max papers per reviewer (default: minimal)"
    )
    generate.add_argument("--seed", type=int, default=0, help="random seed")

    solve = subparsers.add_parser("solve", help="solve a conference assignment")
    solve.add_argument(
        "problem",
        nargs="?",
        default=None,
        help="path of the JSON problem file (or use --store)",
    )
    solve.add_argument("output", help="path of the JSON assignment file to write")
    solve.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="load the problem from a SQLite problem store instead of a JSON file",
    )
    solve.add_argument(
        "--method",
        default="SDGA-SRA",
        choices=available_cra_solvers(),
        help="assignment method (from the solver registry)",
    )
    solve.add_argument(
        "--portfolio",
        nargs="?",
        const=",".join(DEFAULT_PORTFOLIO),
        default=None,
        metavar="SOLVERS",
        help=(
            "race several solvers and keep the best assignment; pass a "
            "comma-separated solver list, 'all' for every registered "
            "solver (exponential-time members excluded), or omit the "
            f"value for the default portfolio ({', '.join(DEFAULT_PORTFOLIO)})"
        ),
    )
    solve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds for the portfolio race",
    )
    solve.add_argument(
        "--trace",
        action="store_true",
        help="record spans and print the solve's timing tree afterwards",
    )
    _add_workers_flag(solve)

    journal = subparsers.add_parser("journal", help="find the best group for one paper")
    journal.add_argument("problem", help="path of the JSON problem file")
    journal.add_argument("paper_id", help="id of the paper to staff")
    journal.add_argument("--group-size", type=int, default=None,
                         help="override the problem's group size")
    journal.add_argument(
        "--solver",
        default="BBA",
        choices=available_jra_solvers(),
        help="journal solver (from the solver registry)",
    )

    evaluate = subparsers.add_parser("evaluate", help="score an existing assignment")
    evaluate.add_argument("problem", help="path of the JSON problem file")
    evaluate.add_argument("assignment", help="path of the JSON assignment file")

    serve = subparsers.add_parser(
        "serve", help="serve JSON-lines requests from a resident engine"
    )
    source = serve.add_mutually_exclusive_group(required=False)
    source.add_argument("--problem", help="path of the JSON problem file to load")
    source.add_argument("--snapshot", help="path of an engine snapshot to resume from")
    source.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="back the initial tenant by a SQLite problem store at this path",
    )
    serve.add_argument(
        "--tcp",
        action="store_true",
        help=(
            "serve a TCP JSON-lines endpoint (repro.net) instead of stdio; "
            "prints one {'event': 'listening', ...} JSON line with the bound "
            "port, then serves until a 'shutdown' request"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (with --tcp)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port; 0 binds an ephemeral port (with --tcp)",
    )
    serve.add_argument(
        "--tenant",
        default="default",
        help="conference id of the initial tenant (with --tcp)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help=(
            "admission bound: requests admitted-but-unanswered per tenant "
            "before new ones are refused as 'overloaded' (with --tcp)"
        ),
    )
    serve.add_argument(
        "--warm",
        action="store_true",
        help="build the score matrix before serving the first request",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="record a span tree per request (fetchable via the 'trace' kind)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help=(
            "emit a JSON diagnostics line on stderr for every request "
            "slower than this many milliseconds (span tree attached when "
            "--trace is on)"
        ),
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        help=(
            "make tenants durable (with --tcp): write-ahead log + "
            "checkpoints per tenant under this directory; on start, every "
            "journal found there is recovered (checkpoint + WAL replay)"
        ),
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        help="journaled mutations between checkpoints (with --wal-dir)",
    )
    serve.add_argument(
        "--fsync",
        default="batch",
        choices=("never", "batch", "always"),
        help="WAL fsync policy (with --wal-dir); see docs/durability.md",
    )
    serve.add_argument(
        "--applied-cap",
        type=int,
        default=1024,
        help=(
            "bound of the per-tenant applied-response (idempotency) map "
            "(with --wal-dir); evictions are counted as "
            "durability.applied_evicted"
        ),
    )
    serve.add_argument(
        "--replicate-to",
        default=None,
        metavar="HOST:PORT",
        help=(
            "ship this server's WAL to a warm standby at HOST:PORT "
            "(with --tcp and --wal-dir); reconnects and catches up "
            "whenever the standby comes and goes"
        ),
    )
    serve.add_argument(
        "--standby-of",
        default=None,
        metavar="HOST:PORT",
        help=(
            "run as a warm standby of the primary at HOST:PORT (with "
            "--tcp and --wal-dir): replay replication frames, refuse "
            "engine traffic with error_type 'standby' until promoted"
        ),
    )
    serve.add_argument(
        "--auto-promote-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "standby only: self-promote when no replication frame has "
            "arrived for this many seconds (omit for explicit 'promote' "
            "requests only)"
        ),
    )
    _add_workers_flag(serve)

    wal = subparsers.add_parser(
        "wal",
        help="inspect a WAL root offline (segments, seqs, torn tails)",
    )
    wal.add_argument("root", help="the --wal-dir directory to inspect")
    wal.add_argument(
        "--tenant", default=None, help="inspect only this tenant's journal"
    )
    wal.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object instead of the text summary",
    )

    session = subparsers.add_parser(
        "session", help="replay a JSON-lines request script against a fresh engine"
    )
    session.add_argument(
        "problem",
        nargs="?",
        default=None,
        help="path of the JSON problem file to load (or use --store)",
    )
    session.add_argument("requests", help="path of the JSON-lines request script")
    session.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="back the engine by a SQLite problem store instead of a JSON file",
    )
    session.add_argument(
        "--output", default=None, help="write responses to this file instead of stdout"
    )
    session.add_argument(
        "--save-snapshot", default=None, help="save the final engine state to this path"
    )
    _add_workers_flag(session)

    store = subparsers.add_parser(
        "store",
        help="import/export/inspect SQLite problem stores (docs/storage.md)",
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_import = store_commands.add_parser(
        "import", help="compile a JSON problem file or CSV directory into a store"
    )
    store_import.add_argument(
        "source", help="JSON problem file, or CSV snapshot directory"
    )
    store_import.add_argument("store", help="path of the SQLite store file to create")
    store_import.add_argument(
        "--blocks",
        action="store_true",
        help="also allocate a memmap block backend for the score matrix",
    )
    store_import.add_argument(
        "--block-cols",
        type=int,
        default=64,
        help="columns per block of the memmap backend (with --blocks)",
    )
    store_export = store_commands.add_parser(
        "export", help="export a store back to a JSON file or CSV directory"
    )
    store_export.add_argument("store", help="path of the SQLite store file")
    store_export.add_argument(
        "dest",
        help=(
            "destination: a path ending in .json gets the JSON problem "
            "format, anything else a CSV snapshot directory (with bids)"
        ),
    )
    store_info = store_commands.add_parser(
        "info", help="print a store's rows, indexes and maintenance counters"
    )
    store_info.add_argument("store", help="path of the SQLite store file")

    return parser


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the parallel execution layer "
            "(0 = one per CPU core; omit for fully serial operation)"
        ),
    )


def _parallel_config(args: argparse.Namespace) -> "ParallelConfig | None":
    workers = getattr(args, "workers", None)
    if workers is None:
        return None
    return ParallelConfig(workers=workers)


def _command_generate(args: argparse.Namespace) -> int:
    generator = SyntheticWorkloadGenerator(num_topics=args.topics, seed=args.seed)
    problem = generator.generate_problem(
        num_papers=args.papers,
        num_reviewers=args.reviewers,
        group_size=args.group_size,
        reviewer_workload=args.workload,
    )
    path = save_problem(problem, args.output)
    print(
        f"wrote {path}: {problem.num_papers} papers, {problem.num_reviewers} reviewers, "
        f"delta_p={problem.group_size}, delta_r={problem.reviewer_workload}"
    )
    return 0


def _load_problem_source(args: argparse.Namespace) -> "WGRAPProblem | None":
    """Resolve the problem of a command taking a JSON file or ``--store``.

    Returns ``None`` (after printing an error) unless exactly one source
    was given.  The SQLite store is opened read-materialise-close: these
    commands want a standalone problem, not a live attachment.
    """
    if (args.problem is None) == (args.store is None):
        print(
            f"error: {args.command} needs exactly one of a problem file "
            "or --store",
            file=sys.stderr,
        )
        return None
    if args.store is not None:
        from repro.store.sqlite import SqliteProblemStore

        store = SqliteProblemStore.open(args.store)
        try:
            return store.load_problem()
        finally:
            store.close()
    return load_problem(args.problem)


def _command_solve(args: argparse.Namespace) -> int:
    if args.trace:
        from repro.obs.trace import get_tracer

        get_tracer().enabled = True
    problem = _load_problem_source(args)
    if problem is None:
        return 2
    parallel = _parallel_config(args)
    races_in_processes = (
        args.portfolio is not None
        and parallel is not None
        and parallel.resolved_workers() > 1
    )
    if parallel is not None and not races_in_processes:
        # Warm the cached pair-score matrix through the sharded kernel so
        # the solver's scoring stage is already paid for (bitwise-equal).
        # Pointless before a process race: workers rebuild the problem
        # from its dict form and never see this cache.
        problem.warm_pair_scores(parallel=parallel)
    if args.portfolio is not None:
        solvers = [name.strip() for name in args.portfolio.split(",") if name.strip()]
        outcome = run_portfolio(
            problem, solvers=solvers, deadline=args.deadline, config=parallel
        )
        for entry in outcome.entries:
            detail = (
                f"score {entry.score:.4f} in {entry.elapsed_seconds:.2f}s"
                if entry.status == "ok"
                else entry.status + (f": {entry.error}" if entry.error else "")
            )
            print(f"  {entry.solver}: {detail}")
        result = outcome.best
        print(f"portfolio winner: {outcome.best_solver}")
    else:
        solver = create_solver("cra", args.method)
        result = solver.solve(problem)
    solve_trace = None
    if args.trace:
        from repro.obs.trace import get_tracer

        # Snapshot now: the evaluation below records traces of its own.
        solve_trace = get_tracer().last_trace()
    save_assignment(result.assignment, args.output)
    ratio = optimality_ratio(problem, result.assignment)
    print(
        f"{result.solver_name}: coverage score {result.score:.4f}, "
        f"optimality ratio {ratio:.4f}, "
        f"lowest coverage {lowest_coverage_score(problem, result.assignment):.4f}, "
        f"time {result.elapsed_seconds:.2f}s"
    )
    print(f"wrote assignment to {args.output}")
    if solve_trace is not None:
        trace_id, root = solve_trace
        print(f"trace {trace_id}:")
        print(root.format_tree())
    return 0


def _command_journal(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    engine = AssignmentEngine(problem)
    answer = engine.journal_query(
        args.paper_id, group_size=args.group_size, solver=args.solver
    )
    print(f"best group for paper {args.paper_id!r} (score {answer.best.score:.4f}):")
    for reviewer_id in answer.best.reviewer_ids:
        print(f"  - {reviewer_id}")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    assignment = load_assignment(args.assignment)
    problem.validate_assignment(assignment, require_complete=False)
    score = problem.assignment_score(assignment)
    print(f"coverage score: {score:.4f}")
    print(f"optimality ratio: {optimality_ratio(problem, assignment):.4f}")
    print(f"lowest per-paper coverage: {lowest_coverage_score(problem, assignment):.4f}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    parallel = _parallel_config(args)
    if not args.tcp and not (args.problem or args.snapshot or args.store):
        print(
            "error: serve needs --problem, --snapshot or --store "
            "(a TCP server may instead start empty and accept create_tenant)",
            file=sys.stderr,
        )
        return 2
    if args.wal_dir is not None and not args.tcp:
        print(
            "error: --wal-dir needs --tcp (durability journals per-tenant "
            "state; the stdio loop has no tenants)",
            file=sys.stderr,
        )
        return 2
    if (args.replicate_to or args.standby_of) and args.wal_dir is None:
        print(
            "error: --replicate-to/--standby-of need --wal-dir (the WAL "
            "root is the replication unit)",
            file=sys.stderr,
        )
        return 2
    if args.replicate_to and args.standby_of:
        print(
            "error: --replicate-to and --standby-of are mutually exclusive "
            "(promote the standby before chaining a new one)",
            file=sys.stderr,
        )
        return 2
    if args.standby_of and (args.problem or args.snapshot or args.store):
        print(
            "error: a standby takes its state from the primary; "
            "--problem/--snapshot/--store cannot be combined with --standby-of",
            file=sys.stderr,
        )
        return 2
    engine = None
    if args.snapshot:
        engine = AssignmentEngine.load(args.snapshot, parallel=parallel)
    elif args.problem:
        engine = AssignmentEngine(load_problem(args.problem), parallel=parallel)
    elif args.store:
        from repro.store.sqlite import SqliteProblemStore

        engine = AssignmentEngine.from_store(
            SqliteProblemStore.open(args.store), parallel=parallel
        )
    if args.warm and engine is not None:
        engine.warm()
    if args.trace:
        from repro.obs.trace import get_tracer

        get_tracer().enabled = True
    slow_threshold = None if args.slow_ms is None else args.slow_ms / 1000.0
    if args.tcp:
        return _serve_tcp(args, engine)
    try:
        serve_stream(
            engine,
            sys.stdin,
            sys.stdout,
            slow_threshold=slow_threshold,
            diagnostics=sys.stderr,
            handle_signals=True,
        )
    finally:
        # The SQLite backend holds one long transaction; only close()
        # commits it — without this, every mutation served over stdio
        # would silently roll back when the process exits.
        if engine is not None and engine.store is not None:
            engine.store.close()
    return 0


def _serve_tcp(args: argparse.Namespace, engine: AssignmentEngine | None) -> int:
    """Run the asyncio TCP front end until a ``shutdown`` request.

    The bound address is announced as one ``{"event": "listening", ...}``
    JSON line on stdout — with ``--port 0`` this is how callers learn the
    ephemeral port, which is what makes subprocess tests collision-safe.
    """
    import asyncio
    import json
    import signal

    from repro.net import AdmissionController, AssignmentServer

    durability = None
    if args.wal_dir is not None:
        from repro.durability import DurabilityConfig

        durability = DurabilityConfig(
            root=args.wal_dir,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
            applied_limit=args.applied_cap,
        )

    def _endpoint(text: str) -> tuple[str, int]:
        host, _, port = text.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(
                f"error: {text!r} is not a HOST:PORT replication endpoint"
            )
        return host, int(port)

    replicate_to = _endpoint(args.replicate_to) if args.replicate_to else None
    standby_of = _endpoint(args.standby_of) if args.standby_of else None
    server = AssignmentServer(
        host=args.host,
        port=args.port,
        admission=AdmissionController(max_pending=args.max_pending),
        durability=durability,
        replicate_to=replicate_to,
        standby=standby_of is not None,
        auto_promote_after=args.auto_promote_after,
    )
    if standby_of is not None:
        # Standby state comes from the primary (plus anything this
        # standby already journaled before a restart).
        server.standby.primary = f"{standby_of[0]}:{standby_of[1]}"
        recovered = server.standby.recover_existing()
        role = "standby"
    else:
        recovered = server.recover_tenants()
        if engine is not None and args.tenant not in server.tenants:
            server.add_tenant(args.tenant, engine, default=True)
        role = "primary" if replicate_to is not None else "standalone"

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        installed: list[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(server.drain())
                )
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                break  # platform without loop signal handlers
        try:
            host, port = await server.start()
            print(
                json.dumps(
                    {
                        "event": "listening",
                        "host": host,
                        "port": port,
                        "tenants": server.tenants.ids(),
                        "recovered": recovered,
                        "durable": durability is not None,
                        "role": role,
                    }
                ),
                flush=True,
            )
            await server.wait_shutdown()
        finally:
            await server.stop()
            for signum in installed:
                loop.remove_signal_handler(signum)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _command_wal(args: argparse.Namespace) -> int:
    import json

    from repro.durability.inspect import inspect_root, inspect_tenant

    root = Path(args.root)
    if not root.exists():
        print(f"error: no WAL root at {root}", file=sys.stderr)
        return 2
    if args.tenant is not None:
        directory = root / args.tenant
        if not directory.is_dir():
            print(
                f"error: no journal directory for tenant {args.tenant!r} "
                f"under {root}",
                file=sys.stderr,
            )
            return 2
        report = {"root": str(root), "tenants": {args.tenant: inspect_tenant(directory)}}
    else:
        report = inspect_root(root)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if not report["tenants"]:
        print(f"{root}: no tenant journals")
        return 0
    print(f"WAL root {root}: {len(report['tenants'])} tenant journal(s)")
    for tenant_id, entry in report["tenants"].items():
        checkpoint = (
            f"checkpoint_seq={entry['checkpoint_seq']}"
            if entry["has_checkpoint"]
            else "no checkpoint"
        )
        print(
            f"  {tenant_id}: {checkpoint} last_seq={entry['last_seq']} "
            f"records={entry['records']} applied_keys={entry['applied_keys']} "
            f"dropped_bytes={entry['dropped_bytes']}"
        )
        for segment in entry["segments"]:
            print(f"    {segment}")
        for kind, count in entry["kinds"].items():
            print(f"    {kind}: {count}")
        if entry["dropped_bytes"]:
            print(
                f"    warning: {entry['dropped_bytes']} torn-tail bytes will "
                "be dropped at recovery"
            )
    return 0


def _command_session(args: argparse.Namespace) -> int:
    import json

    from repro.exceptions import RequestError
    from repro.service.requests import Response

    if (args.problem is None) == (args.store is None):
        print(
            "error: session needs exactly one of a problem file or --store",
            file=sys.stderr,
        )
        return 2
    if args.store is not None:
        from repro.store.sqlite import SqliteProblemStore

        engine = AssignmentEngine.from_store(
            SqliteProblemStore.open(args.store), parallel=_parallel_config(args)
        )
    else:
        engine = AssignmentEngine(
            load_problem(args.problem), parallel=_parallel_config(args)
        )
    session = EngineSession(engine)
    # Parse every line up front, keeping failures as error responses in
    # script order, so one bad line never loses the whole replay.
    slots: list[Response | None] = []
    script = Path(args.requests).read_text(encoding="utf-8")
    for line in script.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            session.submit(request_from_dict(json.loads(line)))
            slots.append(None)
        except json.JSONDecodeError as exc:
            slots.append(Response.failure(kind="parse", error=f"invalid JSON: {exc}"))
        except RequestError as exc:
            slots.append(Response.failure(kind="parse", error=str(exc)))
    drained = iter(session.drain())
    responses = [slot if slot is not None else next(drained) for slot in slots]
    rendered = "\n".join(json.dumps(response.to_dict()) for response in responses)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote {len(responses)} responses to {args.output}")
    else:
        print(rendered)
    if args.save_snapshot:
        engine.save_snapshot(args.save_snapshot)
        print(f"saved engine snapshot to {args.save_snapshot}")
    if engine.store is not None:
        engine.store.close()
    return 0


def _command_store(args: argparse.Namespace) -> int:
    import json

    from repro.store.sqlite import SqliteProblemStore

    if args.store_command == "import":
        source = Path(args.source)
        if source.is_dir():
            from repro.store.csvio import import_problem_csv

            problem, bids = import_problem_csv(source)
        else:
            problem, bids = load_problem(str(source)), ()
        store = SqliteProblemStore.create(
            args.store, problem, blocks=args.blocks, block_cols=args.block_cols
        )
        if bids:
            store.record_bids(bids)
        description = store.describe()
        store.close()
        print(
            f"imported {description['reviewer_rows']} reviewers, "
            f"{description['paper_rows']} papers, "
            f"{description['conflict_rows']} conflicts and "
            f"{len(bids)} bids into {args.store}"
        )
        return 0
    if args.store_command == "export":
        store = SqliteProblemStore.open(args.store)
        try:
            problem = store.load_problem()
            bids = store.load_bids()
        finally:
            store.close()
        dest = Path(args.dest)
        if dest.suffix == ".json":
            save_problem(problem, str(dest))
            if bids:
                print(
                    f"note: {len(bids)} stored bids are not part of the "
                    "JSON problem format; export to a CSV directory to keep them",
                    file=sys.stderr,
                )
        else:
            from repro.store.csvio import export_problem_csv

            export_problem_csv(problem, dest, bids)
        print(
            f"exported {problem.num_reviewers} reviewers and "
            f"{problem.num_papers} papers to {dest}"
        )
        return 0
    store = SqliteProblemStore.open(args.store)
    try:
        print(json.dumps(store.describe(), indent=2, sort_keys=True))
    finally:
        store.close()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``wgrap`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "solve": _command_solve,
        "journal": _command_journal,
        "evaluate": _command_evaluate,
        "serve": _command_serve,
        "session": _command_session,
        "wal": _command_wal,
        "store": _command_store,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
